"""WAL/redo group commit with pipelined replica fan-out.

The synchronous :meth:`PolarStore.write_redo` sums its parts
analytically: leader persist, then follower persists offset by one RPC,
then the quorum ack.  At scale neither shape holds — commits arriving
while a flush is in flight share the *next* performance-layer write
(group commit, the at-scale form of Opt#1), and the leader's device
write overlaps the follower round-trips (pipelined fan-out) instead of
being serialized against them.

:class:`GroupCommitPipeline` is the engine-mode commit path:

* every :meth:`commit_proc` call appends its records to the pending
  list and wakes the single flusher process;
* the flusher drains the pending list into one batch, encodes it as one
  blob, and replicates it.  While that flush is in flight, new commits
  pile up and form the next batch — batch size *emerges from load*, no
  tuning needed.  An optional ``window_us`` additionally holds each
  flush open (classic group-commit timer);
* replication spawns the leader persist and all follower pipelines
  (send RTT → persist → ack RTT) as concurrent processes; the commit
  event fires the moment the leader is durable and ``quorum - 1``
  follower acks are in.  A slow follower keeps occupying its device in
  the background without delaying the commit;
* if enough followers fail mid-flight that quorum can never be reached
  — or an election fences this replication attempt — the flusher
  *retries* the batch with bounded, seeded-jitter exponential backoff
  (a transient quorum loss across a failover is the expected case, not
  an error).  Only when the retry deadline is exhausted does the commit
  event fail with :class:`RaftError` — every waiter in the batch sees
  the same error, and nothing deadlocks, exactly as before;
* each replication attempt snapshots the store's leader epoch and is
  *fenced*: if an election moves leadership while the fan-out is in
  flight, the attempt fails rather than letting a deposed leader
  acknowledge a commit it can no longer guarantee.

With a single client and ``window_us == 0`` the pipeline reproduces the
synchronous path's timings exactly (each batch has one commit, the
fan-out arithmetic degenerates to ``max(leader, k-th ack)``) — the
analytic-equivalence property the legacy tests rely on.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.common.errors import (
    DeviceUnavailableError,
    RaftError,
    ReproError,
)
from repro.common.rng import make_rng
from repro.engine import Engine, Event
from repro.obs.events import recorder_active
from repro.storage.redo import RedoRecord, encode_records


class GroupCommitPipeline:
    """One flusher per volume batching concurrent redo commits."""

    def __init__(
        self,
        store,
        engine: Engine,
        window_us: float = 0.0,
        max_batch: int = 64,
        retry_backoff_us: float = 250.0,
        retry_deadline_us: float = 60_000.0,
    ) -> None:
        if window_us < 0:
            raise ValueError(f"negative group-commit window {window_us}")
        self.store = store
        self.engine = engine
        self.window_us = float(window_us)
        self.max_batch = max_batch
        #: Base pause before re-replicating after a transient RaftError;
        #: doubles per attempt with seeded jitter.
        self.retry_backoff_us = float(retry_backoff_us)
        #: Total retry budget per batch; exhausted = fail-fast as before.
        self.retry_deadline_us = float(retry_deadline_us)
        self._retry_rng = make_rng(
            getattr(store, "seed", 0), "commit-retry"
        )
        #: (records, arrive_us, commit event) awaiting the next flush.
        self._pending: List[Tuple[List[RedoRecord], float, Event]] = []
        self._flusher = None
        m = store.metrics
        self._batches = m.counter("storage.group_commit.batches")
        self._batched = m.counter("storage.group_commit.commits")
        self._batch_size = m.histogram("storage.group_commit.batch_size")
        self._retries = m.counter("raft.retries")

    def commit_proc(self, records: Sequence[RedoRecord]):
        """Engine process: enqueue this commit, wait for its batch to be
        durable at quorum; returns the commit time."""
        engine = self.engine
        done = engine.event("group-commit")
        self._pending.append((list(records), engine.now_us, done))
        if self._flusher is None or self._flusher.done:
            self._flusher = engine.spawn(
                self._flush_loop(), name="redo-flusher"
            )
        commit = yield done
        return commit

    def _flush_loop(self):
        """Drain pending commits batch by batch until none remain, then
        exit (the next commit spawns a fresh flusher)."""
        engine = self.engine
        store = self.store
        while self._pending:
            if self.window_us > 0.0:
                yield engine.timeout(self.window_us)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            records = [r for recs, _, _ in batch for r in recs]
            self._batches.inc()
            self._batched.add(len(batch))
            self._batch_size.record(len(batch))
            try:
                commit = yield from self._replicate_with_retry(records)
            except ReproError as exc:
                for _, _, done in batch:
                    done.fail(exc)
                continue
            store._after_redo_commit(commit, records)
            rec = recorder_active()
            if rec is not None:
                rec.emit(
                    commit, "commit", "group_flush",
                    commits=len(batch),
                    records=len(records),
                    oldest_wait_us=round(commit - batch[0][1], 3),
                )
            tracer = store.metrics.tracer
            for _, arrive_us, done in batch:
                # Retrospective span (simulated timestamps, emitted after
                # the fact): the ambient span stack cannot stay open
                # across engine yields, so the per-commit redo_commit
                # span is recorded once its duration is known.
                sp = tracer.begin(
                    "storage.redo_commit", arrive_us, layer="storage"
                )
                tracer.end(sp, commit)
                store.redo_commit_stats.append(commit - arrive_us)
                store._commit_rate.record(commit)
                done.succeed(commit)

    def _replicate_with_retry(self, records: List[RedoRecord]):
        """Replicate one batch, retrying transient :class:`RaftError`
        with bounded seeded-jitter backoff (see module docstring).

        A batch that succeeds first try draws no randomness and waits no
        timeout — the success path is timing-identical to calling
        :meth:`_replicate_proc` directly, which the analytic-equivalence
        tests depend on.
        """
        engine = self.engine
        deadline = engine.now_us + self.retry_deadline_us
        attempt = 0
        while True:
            try:
                commit = yield from self._replicate_proc(records)
            except RaftError as exc:
                attempt += 1
                if engine.now_us >= deadline:
                    raise RaftError(
                        f"commit gave up after {attempt} attempts: {exc}"
                    )
                self._retries.inc()
                pause = self.retry_backoff_us * (2 ** min(attempt, 6))
                pause *= 0.5 + self._retry_rng.random()
                pause = max(1.0, min(pause, deadline - engine.now_us))
                rec = recorder_active()
                if rec is not None:
                    rec.emit(
                        engine.now_us, "commit", "retry",
                        attempt=attempt,
                        pause_us=round(pause, 3),
                        reason=str(exc),
                    )
                yield engine.timeout(pause)
            else:
                return commit

    def _replicate_proc(self, records: List[RedoRecord]):
        """Pipelined quorum replication of one encoded redo batch.

        Leader persist and every follower pipeline run as concurrent
        processes; this process wakes when quorum is durable (or
        provably unreachable).  The attempt is pinned to the leader
        epoch observed at entry: an election mid-flight fails it with
        :class:`RaftError` instead of letting the deposed leader ack.
        """
        store = self.store
        engine = self.engine
        store._require_quorum(engine.now_us)
        epoch = store._leader_epoch
        leader = store.leader
        blob = encode_records(records)
        pages = [r.page_no for r in records]
        send = store.network.rpc_us(len(blob))
        ack = store.network.rpc_us(64)
        needed = store.quorum - 1  # follower acks beyond the leader
        quorum_ev = engine.event("redo-quorum")
        state = {"leader_done": False, "acks": 0, "live": 0, "lost": 0}

        def check() -> None:
            if quorum_ev.fired:
                return
            if store._leader_epoch != epoch:
                quorum_ev.fail(RaftError(
                    "fenced: leadership changed during replication"
                ))
            elif state["leader_done"] and state["acks"] >= needed:
                quorum_ev.succeed(engine.now_us)
            elif state["live"] - state["lost"] < needed:
                alive = 1 + state["live"] - state["lost"]
                quorum_ev.fail(
                    RaftError(f"no quorum: {alive}/{len(store.nodes)} alive")
                )

        def leader_proc():
            yield from leader.persist_redo_proc(blob)
            state["leader_done"] = True
            check()

        def follower_proc(i: int, node):
            yield engine.timeout(send)
            try:
                # Replica persists are untraced, mirroring the
                # synchronous path's span suppression: only the
                # leader's work is attributed on the commit path.
                yield from node.persist_redo_proc(blob, trace=False)
            except DeviceUnavailableError:
                store._missed[i].update(pages)
                state["lost"] += 1
                check()
                return
            yield engine.timeout(ack)
            if store._net_blocked(i, engine.now_us):
                # The ack died in a partition that opened mid-flight;
                # the follower's copy is durable but unprovable here.
                state["lost"] += 1
            else:
                state["acks"] += 1
            check()

        engine.spawn(leader_proc(), name="redo-leader")
        for i, node in store._followers():
            if not store._alive[i] or store._net_blocked(i, engine.now_us):
                store._missed[i].update(pages)
                continue
            state["live"] += 1
            engine.spawn(follower_proc(i, node), name=f"redo-follower-{i}")
        check()  # degenerate case: no follower can ever ack
        commit = yield quorum_ev
        return commit
