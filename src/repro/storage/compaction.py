"""The compaction scheduler: policy-issued maintenance as engine daemons.

The fixed ``consolidator_proc`` loop used to *be* the background story:
every cycle, fold all pending redo into pages on every live node.  With
pluggable consolidation policies that is only the single-level behaviour;
run-based policies (leveled/tiered) instead accumulate compaction debt
that someone has to pay down.  :class:`CompactionScheduler` is that
someone — one engine daemon per volume that each cycle:

1. runs the classic consolidation pass for policies that want it
   (``consolidate_on_cycle``, i.e. single-level — byte-identical to the
   old loop, including the shared ``storage.background.consolidate_cycles``
   counter);
2. asks each node's policy for :class:`~repro.storage.consolidation.CompactionTask`
   work, runs the highest-priority task, and re-plans until the policy is
   satisfied or the per-cycle token budget runs out.

Compaction I/O goes through the same shared device state as foreground
traffic, so a compacting device genuinely delays concurrent reads — and
a token-throttled scheduler lets debt build up until read fan-out
visibly grows (the trade the scheduler tests measure).

Instrumentation (``storage.compaction.*`` counters, the ``compaction``
flight-recorder channel) is created lazily on the first real task, so a
default single-level volume registers nothing new and its metric
fingerprints stay identical to pre-scheduler builds.
"""

from __future__ import annotations

from typing import Optional

from repro.engine import Engine
from repro.obs.events import emit, recorder_active
from repro.storage.consolidation import ConsolidationConfig


def _store_consolidation(store) -> ConsolidationConfig:
    config = getattr(store, "consolidation", None)
    return config if config is not None else ConsolidationConfig()


class CompactionScheduler:
    """Periodic consolidation + compaction for one volume's nodes."""

    def __init__(
        self,
        store,
        engine: Engine,
        period_us: Optional[float] = None,
        tokens_per_cycle: Optional[int] = None,
    ) -> None:
        self.store = store
        self.engine = engine
        config = _store_consolidation(store)
        self.period_us = (
            config.consolidate_period_us if period_us is None else period_us
        )
        self.tokens_per_cycle = (
            config.compaction_tokens
            if tokens_per_cycle is None
            else tokens_per_cycle
        )
        #: Same counter (and name) the pre-scheduler consolidator bumped.
        self._cycles = store.metrics.counter(
            "storage.background.consolidate_cycles"
        )
        # Compaction instruments are lazy: see module docstring.
        self._tasks_counter = None
        self._deferred_counter = None
        self._compact_us = None

    # -- the daemon ----------------------------------------------------------

    def proc(self):
        """Generator to ``engine.spawn`` (``consolidator_proc`` wraps it)."""
        engine = self.engine
        store = self.store
        while True:
            yield engine.timeout(self.period_us)
            for i, node in enumerate(store.nodes):
                if not store._alive[i]:
                    continue
                if getattr(node.log_store, "consolidate_on_cycle", True):
                    done = node.consolidate_pending(engine.now_us)
                    if done > engine.now_us:
                        yield engine.sleep_until(done)
                yield from self.run_pending(node)
            self._cycles.inc()

    def run_pending(self, node):
        """Run the node's planned compactions (respecting the token cap).

        A generator: yields ``sleep_until`` events so compaction time is
        spent on the engine clock, competing for the shared devices.
        """
        policy = node.log_store
        plan = getattr(policy, "plan_compactions", None)
        if plan is None:
            return
        engine = self.engine
        ran = 0
        while True:
            tasks = plan()
            if not tasks:
                break
            tasks = sorted(tasks, key=lambda t: (t.priority, t.level))
            if self.tokens_per_cycle and ran >= self.tokens_per_cycle:
                self._note_deferred(node, tasks)
                break
            task = tasks[0]
            start = engine.now_us
            done = policy.compact(start, task)
            ran += 1
            self._note_task(node, task, start, done)
            if done > engine.now_us:
                yield engine.sleep_until(done)

    def drain(self, node, now_us: float) -> float:
        """Synchronously run every planned compaction (non-engine callers:
        benchmarks and checkpoint-style barriers).  Returns the finish
        time on the simulated clock."""
        policy = node.log_store
        plan = getattr(policy, "plan_compactions", None)
        if plan is None:
            return now_us
        while True:
            tasks = plan()
            if not tasks:
                return now_us
            task = sorted(tasks, key=lambda t: (t.priority, t.level))[0]
            start = now_us
            now_us = policy.compact(start, task)
            self._note_task(node, task, start, now_us)

    # -- instrumentation -----------------------------------------------------

    def _note_task(self, node, task, start_us: float, done_us: float) -> None:
        if self._tasks_counter is None:
            self._tasks_counter = self.store.metrics.counter(
                "storage.compaction.tasks"
            )
            self._compact_us = self.store.metrics.series(
                "storage.compaction.task_us"
            )
        self._tasks_counter.inc()
        self._compact_us.append(done_us - start_us)
        if recorder_active() is not None:
            emit(
                start_us,
                "compaction",
                "task",
                node=node.name,
                level=task.level,
                reason=task.reason,
                runs=task.runs,
                us=round(done_us - start_us, 3),
            )

    def _note_deferred(self, node, tasks) -> None:
        if self._deferred_counter is None:
            self._deferred_counter = self.store.metrics.counter(
                "storage.compaction.deferred"
            )
        self._deferred_counter.add(len(tasks))
        if recorder_active() is not None:
            emit(
                self.engine.now_us,
                "compaction",
                "deferred",
                node=node.name,
                debt=len(tasks),
            )
