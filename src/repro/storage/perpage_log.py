"""Evicted-redo storage: scattered baseline vs per-page log (Opt#3, §3.3.3).

When the redo cache overflows (a lagging RO node prevents recycling),
evicted records must go to storage.  Two strategies are implemented:

:class:`ScatteredLogStore`
    The traditional approach: evicted records are appended into shared
    4 KB log blocks in arrival order.  One page's records end up sprayed
    across many blocks, so consolidating that page later needs one read
    *per distinct block* — the read amplification behind the tail latency
    of Figure 6a / Figure 15.

:class:`PerPageLogStore`
    The paper's optimization: every 16 KB page owns a dedicated sparse
    4 KB log block.  On eviction the store re-merges all of the page's
    records into that one block (an in-memory merge plus one 4 KB write),
    so consolidation always needs exactly one read.  The dedicated block
    per page costs 25% *logical* space — affordable only because the CSD
    decouples logical from physical space (an empty or compressible log
    block consumes almost no NAND).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Set

from repro.common.checksum import crc32
from repro.common.errors import ChecksumError, ReproError
from repro.common.units import LBA_SIZE
from repro.perf.runtime import perf_active
from repro.storage.redo import RedoRecord, decode_records, encode_records

_HEADER = struct.Struct("<QQHH")

#: Log blocks are sealed with a small integrity header so corrupted or
#: torn spill blocks are *detected* above the device instead of applying
#: garbage redo to a page: ``crc32(body) | body_len``.
_SEAL = struct.Struct("<II")

#: Encoded record bytes one sealed 4 KB log block can hold.
LOG_BLOCK_CAPACITY = LBA_SIZE - _SEAL.size


def seal_block(body: bytes, total_len: int) -> bytes:
    """Frame ``body`` with a CRC header and zero-pad to ``total_len``."""
    if _SEAL.size + len(body) > total_len:
        raise ReproError(
            f"log body of {len(body)} bytes exceeds sealed block capacity"
        )
    blob = _SEAL.pack(crc32(body), len(body)) + body
    return blob + b"\x00" * (total_len - len(blob))


def unseal_block(blob: bytes) -> bytes:
    """Verify a sealed block and return its body.

    Raises :class:`ChecksumError` on any damage — CRC mismatch, an
    impossible length field, or a block too short to carry the header.
    With the wall-clock fast path active the body comes back as a
    zero-copy ``memoryview`` (record decoding parses it in place and
    copies only the record data it keeps).
    """
    if len(blob) < _SEAL.size:
        raise ChecksumError("log block shorter than its seal header")
    crc, length = _SEAL.unpack_from(blob)
    body = memoryview(blob)[_SEAL.size : _SEAL.size + length]
    if len(body) != length or crc32(body) != crc:
        raise ChecksumError("log block fails CRC verification")
    runtime = perf_active()
    if runtime is not None and runtime.zero_copy:
        return body
    return bytes(body)


@dataclass
class FetchResult:
    """Outcome of retrieving a page's evicted records."""

    records: List[RedoRecord]
    reads_issued: int
    done_us: float


class ScatteredLogStore:
    """Baseline: shared append-only 4 KB log blocks."""

    #: A page's records spread across arbitrarily many shared blocks.
    page_capacity_bytes = None

    def __init__(self, device, allocator) -> None:
        self._device = device
        self._allocator = allocator
        self._open_block: List[RedoRecord] = []
        self._open_bytes = 0
        self._open_lba: int = -1
        # page_no -> set of LBAs holding at least one of its records.
        self._page_blocks: Dict[int, Set[int]] = {}
        self._block_records: Dict[int, List[RedoRecord]] = {}
        # Chunk span in blocks (large records get multi-block chunks).
        self._block_span: Dict[int, int] = {}

    def evict(self, start_us: float, records: List[RedoRecord]) -> float:
        """Append records to the open shared block; returns finish time."""
        now = start_us
        for record in records:
            if record.size_bytes > LOG_BLOCK_CAPACITY:
                # A large record (e.g. full-page redo from a reorg) gets
                # its own contiguous multi-block chunk.
                now = self._write_large(now, record)
                continue
            if self._open_lba < 0:
                self._open_lba = self._allocator.allocate_blocks(LBA_SIZE)
                self._block_records[self._open_lba] = []
                self._block_span[self._open_lba] = 1
            if self._open_bytes + record.size_bytes > LOG_BLOCK_CAPACITY:
                now = self._flush(now)
                self._open_lba = self._allocator.allocate_blocks(LBA_SIZE)
                self._block_records[self._open_lba] = []
                self._block_span[self._open_lba] = 1
            self._open_block.append(record)
            self._open_bytes += record.size_bytes
            self._block_records[self._open_lba].append(record)
            self._page_blocks.setdefault(record.page_no, set()).add(self._open_lba)
        if self._open_block:
            now = self._flush(now, keep_open=True)
        return now

    def _write_large(self, start_us: float, record: RedoRecord) -> float:
        from repro.common.units import align_up

        nbytes = align_up(_SEAL.size + record.size_bytes, LBA_SIZE)
        lba = self._allocator.allocate_blocks(nbytes)
        done = self._device.write(
            start_us, lba, seal_block(record.encode(), nbytes)
        ).done_us
        self._block_records[lba] = [record]
        self._block_span[lba] = nbytes // LBA_SIZE
        self._page_blocks.setdefault(record.page_no, set()).add(lba)
        return done

    def _flush(self, start_us: float, keep_open: bool = False) -> float:
        blob = seal_block(encode_records(self._open_block), LBA_SIZE)
        done = self._device.write(start_us, self._open_lba, blob).done_us
        if not keep_open:
            self._open_block = []
            self._open_bytes = 0
            self._open_lba = -1
        return done

    def fetch(self, start_us: float, page_no: int) -> FetchResult:
        """Read back every block containing this page's records."""
        lbas = sorted(self._page_blocks.get(page_no, ()))
        records: List[RedoRecord] = []
        now = start_us
        for lba in lbas:
            span = self._block_span.get(lba, 1)
            completion = self._device.read(now, lba, span * LBA_SIZE)
            now = completion.done_us
            parsed = decode_records(unseal_block(completion.data))
            records.extend(r for r in parsed if r.page_no == page_no)
        return FetchResult(sorted(records), len(lbas), now)

    def discard(self, page_no: int) -> None:
        """Forget a page's records (after successful consolidation)."""
        self._page_blocks.pop(page_no, None)

    def blocks_for(self, page_no: int) -> int:
        return len(self._page_blocks.get(page_no, ()))

    def pages_with_logs(self) -> List[int]:
        return list(self._page_blocks)

    def stored_bytes_for(self, page_no: int) -> int:
        """Encoded bytes of this page's records across shared blocks."""
        lbas = self._page_blocks.get(page_no, ())
        return sum(
            r.size_bytes
            for lba in lbas
            for r in self._block_records.get(lba, ())
            if r.page_no == page_no
        )

    @property
    def allocated_blocks(self) -> int:
        return len(self._block_records)


class PerPageLogStore:
    """Opt#3: one dedicated sparse 4 KB log block per page."""

    #: Hard per-page bound: everything must re-merge into one 4 KB block.
    page_capacity_bytes = LOG_BLOCK_CAPACITY

    def __init__(self, device, allocator) -> None:
        self._device = device
        self._allocator = allocator
        # page_no -> (lba, records merged so far)
        self._slots: Dict[int, int] = {}
        self._merged: Dict[int, List[RedoRecord]] = {}

    def evict(self, start_us: float, records: List[RedoRecord]) -> float:
        """Merge each page's records into its dedicated block."""
        by_page: Dict[int, List[RedoRecord]] = {}
        for record in records:
            by_page.setdefault(record.page_no, []).append(record)
        now = start_us
        for page_no, new_records in by_page.items():
            merged = sorted(self._merged.get(page_no, []) + new_records)
            blob = encode_records(merged)
            if len(blob) > LOG_BLOCK_CAPACITY:
                raise ReproError(
                    f"per-page log overflow for page {page_no}: "
                    f"{len(blob)} bytes (consolidate the page first)"
                )
            if page_no not in self._slots:
                self._slots[page_no] = self._allocator.allocate_blocks(LBA_SIZE)
            self._merged[page_no] = merged
            now = self._device.write(
                now, self._slots[page_no], seal_block(blob, LBA_SIZE)
            ).done_us
        return now

    def fetch(self, start_us: float, page_no: int) -> FetchResult:
        """All of a page's evicted records in exactly one read."""
        lba = self._slots.get(page_no)
        if lba is None:
            return FetchResult([], 0, start_us)
        completion = self._device.read(start_us, lba, LBA_SIZE)
        records = decode_records(unseal_block(completion.data))
        return FetchResult(sorted(records), 1, completion.done_us)

    def discard(self, page_no: int) -> None:
        lba = self._slots.pop(page_no, None)
        self._merged.pop(page_no, None)
        if lba is not None:
            self._allocator.free_blocks(lba, LBA_SIZE)
            self._device.trim(lba, LBA_SIZE)

    def blocks_for(self, page_no: int) -> int:
        return 1 if page_no in self._slots else 0

    def pages_with_logs(self) -> List[int]:
        return list(self._slots)

    def stored_bytes_for(self, page_no: int) -> int:
        """Encoded bytes already merged into a page's log slot."""
        return sum(r.size_bytes for r in self._merged.get(page_no, ()))

    @property
    def allocated_blocks(self) -> int:
        return len(self._slots)


