"""Table-level cold-data archiving to object storage (§6).

The paper's "Alternative Space-Saving Approaches" notes that the system
supports archiving cold tables to object storage.  This module implements
that tier: an :class:`ObjectStore` with object-storage characteristics
(millisecond latency, per-request overhead, very low cost per byte) and a
:class:`TieringManager` that moves page ranges out of a storage node —
heavy-compressed as a single object — and serves reads for archived pages
transparently, with optional restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.clock import Resource
from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, MiB
from repro.compression.cost import codec_cost
from repro.storage.heavy import HeavySegmentStore
from repro.storage.node import ReadResult, StorageNode


@dataclass
class ObjectStoreStats:
    puts: int = 0
    gets: int = 0
    bytes_stored: int = 0


class ObjectStore:
    """A simulated object-storage service (S3/OSS-class).

    Latency model: fixed per-request overhead (metadata, HTTP, auth) plus
    throughput-limited transfer.  Requests share one connection pool.
    """

    def __init__(
        self,
        request_overhead_us: float = 15_000.0,
        throughput_mib_s: float = 200.0,
        connections: int = 8,
    ) -> None:
        self.request_overhead_us = request_overhead_us
        self.throughput_mib_s = throughput_mib_s
        self.pool = Resource("object-store")
        self._objects: Dict[str, bytes] = {}
        self.stats = ObjectStoreStats()
        self._connections = connections

    def _transfer_us(self, nbytes: int) -> float:
        return nbytes / (self.throughput_mib_s * MiB) * 1e6

    def put(self, start_us: float, key: str, blob: bytes) -> float:
        service = self.request_overhead_us + self._transfer_us(len(blob))
        done = self.pool.serve(start_us, service / self._connections)
        self._objects[key] = blob
        self.stats.puts += 1
        self.stats.bytes_stored += len(blob)
        return done

    def get(self, start_us: float, key: str) -> Tuple[bytes, float]:
        if key not in self._objects:
            raise ReproError(f"object {key!r} does not exist")
        blob = self._objects[key]
        service = self.request_overhead_us + self._transfer_us(len(blob))
        done = self.pool.serve(start_us, service / self._connections)
        self.stats.gets += 1
        return blob, done

    def delete(self, key: str) -> None:
        blob = self._objects.pop(key, None)
        if blob is not None:
            self.stats.bytes_stored -= len(blob)

    @property
    def stored_bytes(self) -> int:
        return self.stats.bytes_stored


@dataclass(frozen=True)
class ArchivedRange:
    key: str
    page_nos: Tuple[int, ...]
    compressed_len: int


class TieringManager:
    """Moves cold page ranges between a storage node and object storage."""

    #: Heavy-effort codec shared with the archival path.
    CODEC = HeavySegmentStore.HEAVY_CODEC

    def __init__(self, node: StorageNode, object_store: ObjectStore) -> None:
        self.node = node
        self.remote = object_store
        self._archived: Dict[int, ArchivedRange] = {}  # page_no -> range
        self._next_key = 0

    # -- archive ------------------------------------------------------------

    def archive_to_object_store(
        self, start_us: float, page_nos: List[int]
    ) -> Tuple[ArchivedRange, float]:
        """Heavy-compress ``page_nos`` into one object and free the local
        copies entirely (unlike heavy compression, which stays local)."""
        if not page_nos:
            raise ReproError("cannot archive an empty range")
        pages = []
        now = start_us
        for page_no in page_nos:
            if page_no in self._archived:
                raise ReproError(f"page {page_no} is already archived")
            result = self.node.read_page(now, page_no)
            now = result.done_us
            pages.append(result.data)
        blob = self.CODEC.compress(b"".join(pages))
        now += codec_cost("zstd-heavy").compress_us(len(pages) * DB_PAGE_SIZE)
        key = f"archive-{self.node.name}-{self._next_key}"
        self._next_key += 1
        now = self.remote.put(now, key, blob)
        archived = ArchivedRange(key, tuple(page_nos), len(blob))
        for page_no in page_nos:
            self._archived[page_no] = archived
            entry = self.node.index.remove(page_no)
            self.node.wal.append_index_remove(page_no)
            self.node._release_entry(entry)
            self.node.page_cache.remove(page_no)
        return archived, now

    # -- read ------------------------------------------------------------------

    def read_page(self, start_us: float, page_no: int) -> ReadResult:
        """Transparent read: local tier first, then the object tier."""
        archived = self._archived.get(page_no)
        if archived is None:
            return self.node.read_page(start_us, page_no)
        blob, now = self.remote.get(start_us, archived.key)
        segment = self.CODEC.decompress(blob)
        now += codec_cost("zstd-heavy").decompress_us(len(segment))
        position = archived.page_nos.index(page_no)
        data = segment[position * DB_PAGE_SIZE : (position + 1) * DB_PAGE_SIZE]
        return ReadResult(data, now, 1, 0.0)

    # -- restore -----------------------------------------------------------------

    def restore(self, start_us: float, key_page: int) -> float:
        """Bring an archived range back to the local tier."""
        archived = self._archived.get(key_page)
        if archived is None:
            raise ReproError(f"page {key_page} is not archived")
        blob, now = self.remote.get(start_us, archived.key)
        segment = self.CODEC.decompress(blob)
        now += codec_cost("zstd-heavy").decompress_us(len(segment))
        for position, page_no in enumerate(archived.page_nos):
            image = segment[
                position * DB_PAGE_SIZE : (position + 1) * DB_PAGE_SIZE
            ]
            now = self.node.write_page(now, page_no, image).done_us
            del self._archived[page_no]
        self.remote.delete(archived.key)
        return now

    @property
    def archived_pages(self) -> int:
        return len(self._archived)

    def local_bytes_saved(self) -> int:
        """Logical bytes evicted from the local tier."""
        return len(self._archived) * DB_PAGE_SIZE
