"""Redo log records and page consolidation.

PolarDB ships physiological redo to the storage nodes; storage nodes apply
records to page images in the background ("page consolidation") so compute
nodes can read materialized pages.  A record says: at LSN ``lsn``, write
``data`` at byte ``offset`` of page ``page_no``.  Applying records in LSN
order to the base image reproduces the page at any LSN — this is real data
flow, not an abstraction: the DB layer generates these records and the
storage tests verify byte-exact reconstruction.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.common.errors import CorruptionError
from repro.common.units import DB_PAGE_SIZE

_RECORD_HEADER = struct.Struct("<QQHH")


@dataclass(frozen=True, order=True)
class RedoRecord:
    """One physiological redo record."""

    lsn: int
    page_no: int
    offset: int
    data: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.offset < DB_PAGE_SIZE:
            raise ValueError(f"offset {self.offset} outside page")
        if self.offset + len(self.data) > DB_PAGE_SIZE:
            raise ValueError("record writes past page end")
        if not self.data:
            raise ValueError("empty redo record")

    @property
    def size_bytes(self) -> int:
        return _RECORD_HEADER.size + len(self.data)

    def encode(self) -> bytes:
        return (
            _RECORD_HEADER.pack(self.lsn, self.page_no, self.offset, len(self.data))
            + self.data
        )


def decode_records(blob: bytes) -> List[RedoRecord]:
    """Parse a concatenation of encoded records."""
    records: List[RedoRecord] = []
    pos = 0
    while pos < len(blob):
        if pos + _RECORD_HEADER.size > len(blob):
            raise CorruptionError("truncated redo record header")
        lsn, page_no, offset, length = _RECORD_HEADER.unpack_from(blob, pos)
        pos += _RECORD_HEADER.size
        data = blob[pos : pos + length]
        if len(data) != length:
            raise CorruptionError("truncated redo record body")
        pos += length
        records.append(RedoRecord(lsn, page_no, offset, bytes(data)))
    return records


def encode_records(records: Iterable[RedoRecord]) -> bytes:
    return b"".join(r.encode() for r in records)


def apply_records(page_image: bytes, records: Sequence[RedoRecord]) -> bytes:
    """Apply ``records`` (sorted by LSN) to a 16 KB page image."""
    if len(page_image) != DB_PAGE_SIZE:
        raise ValueError(f"page image is {len(page_image)} bytes")
    image = bytearray(page_image)
    last_lsn = -1
    for record in sorted(records):
        if record.lsn == last_lsn:
            continue  # idempotent re-apply
        image[record.offset : record.offset + len(record.data)] = record.data
        last_lsn = record.lsn
    return bytes(image)
