"""Byte-capacity LRU cache used across the storage node.

Backs the page cache, the redo-log cache, and the decompressed-segment
buffer of the heavy-compression path.  Eviction returns the evicted items
so callers can spill them (the redo cache spills into per-page log space).

Copy audit (zero-copy read path): ``get``/``peek``/``put`` store and hand
back *references* — no ``bytes()`` materialization happens in this layer.
The full-page copies the read path used to make lived in the callers
(``node._read_materialized`` payload slicing, ``device._load`` block
assembly, ``perpage_log.unseal_block`` body slicing) and were removed
there; cached page images stay immutable ``bytes`` shared by reference.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, List, Optional, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """LRU keyed cache bounded by total charged bytes."""

    def __init__(
        self,
        capacity_bytes: int,
        sizer: Optional[Callable[[V], int]] = None,
        metrics=None,
        metric_name: Optional[str] = None,
        metric_labels: Optional[dict] = None,
    ) -> None:
        """``metrics``/``metric_name`` optionally publish hit/miss
        counters and a hit-rate gauge to a
        :class:`~repro.obs.metrics.MetricsRegistry` (e.g.
        ``storage.page_cache.hits{node="node-0"}``)."""
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._sizer = sizer if sizer is not None else len
        self._items: "OrderedDict[K, Tuple[V, int]]" = OrderedDict()
        self._used = 0
        self._pinned: set = set()
        self.hits = 0
        self.misses = 0
        self._hit_ctr = self._miss_ctr = None
        if metrics is not None and metric_name is not None:
            labels = metric_labels or {}
            self._hit_ctr = metrics.counter(f"{metric_name}.hits", **labels)
            self._miss_ctr = metrics.counter(f"{metric_name}.misses", **labels)
            metrics.gauge_fn(
                f"{metric_name}.hit_rate", lambda: self.hit_rate, **labels
            )
            metrics.gauge_fn(
                f"{metric_name}.used_bytes", lambda: self._used, **labels
            )

    # -- pinning -----------------------------------------------------------

    def pin(self, key: K) -> None:
        """Exempt ``key`` from eviction until unpinned (the cache may
        temporarily exceed capacity if everything else is pinned)."""
        if key in self._items:
            self._pinned.add(key)

    def unpin(self, key: K) -> None:
        self._pinned.discard(key)

    # -- accessors -----------------------------------------------------------

    def get(self, key: K) -> Optional[V]:
        entry = self._items.get(key)
        if entry is None:
            self.misses += 1
            if self._miss_ctr is not None:
                self._miss_ctr.inc()
            return None
        self._items.move_to_end(key)
        self.hits += 1
        if self._hit_ctr is not None:
            self._hit_ctr.inc()
        return entry[0]

    def peek(self, key: K) -> Optional[V]:
        """Read without updating recency or hit counters."""
        entry = self._items.get(key)
        return entry[0] if entry else None

    def __contains__(self, key: K) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- mutation ---------------------------------------------------------------

    def put(self, key: K, value: V) -> List[Tuple[K, V]]:
        """Insert/replace; returns evicted ``(key, value)`` pairs."""
        size = self._sizer(value)
        if size > self.capacity_bytes:
            # Too large to cache: evict nothing, do not admit.
            return []
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= old[1]
        self._items[key] = (value, size)
        self._used += size
        evicted: List[Tuple[K, V]] = []
        scanned = 0
        while self._used > self.capacity_bytes and scanned < len(self._items):
            victim_key = next(iter(self._items))
            if victim_key in self._pinned:
                # Skip pinned entries (refresh recency so the scan moves on).
                self._items.move_to_end(victim_key)
                scanned += 1
                continue
            victim_value, victim_size = self._items.pop(victim_key)
            self._used -= victim_size
            evicted.append((victim_key, victim_value))
        return evicted

    def remove(self, key: K) -> Optional[V]:
        entry = self._items.pop(key, None)
        self._pinned.discard(key)
        if entry is None:
            return None
        self._used -= entry[1]
        return entry[0]

    def clear(self) -> None:
        self._items.clear()
        self._pinned.clear()
        self._used = 0
