"""Simplified Raft-style 3-way replication (§3.2.1).

PolarStore commits a write once the leader and a majority of replicas have
persisted it.  This module models exactly that commit rule plus the
network.  Leadership election and log repair live in
:mod:`repro.consensus` — a full Raft implementation (randomized election
timers, term fencing, nextIndex backoff) that a volume opts into via
:meth:`PolarStore.attach_consensus`; without it leadership stays static
at replica 0, and follower failure / quorum loss are still modeled so
the availability behaviour is testable either way.

Timing: the leader issues the replica RPCs in parallel; each follower
persists through its own device queue; the commit time is the leader
persist time joined with the second-fastest follower acknowledgement
(majority of 3 = leader + 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.common.errors import RaftError
from repro.common.units import KiB


@dataclass(frozen=True)
class NetworkModel:
    """Same-cluster RPC cost: fixed one-way latency + per-KiB serialization.

    Defaults model a 25/100 Gbps datacenter network with kernel-bypass
    I/O: ~18 µs one-way, ~0.04 µs per KiB.
    """

    one_way_us: float = 18.0
    per_kib_us: float = 0.04

    def rpc_us(self, payload_bytes: int) -> float:
        """One-way message cost for ``payload_bytes``."""
        return self.one_way_us + self.per_kib_us * payload_bytes / KiB


#: A persist function: (start_us, payload) -> completion time in µs.
PersistFn = Callable[[float, bytes], float]


class Replica:
    """One member of the group; ``persist`` writes to its local durable
    medium (WAL device or data device, injected by the storage node)."""

    def __init__(self, name: str, persist: PersistFn) -> None:
        self.name = name
        self.persist = persist
        self.alive = True
        self.persisted_count = 0

    def handle_append(self, arrive_us: float, payload: bytes) -> float:
        if not self.alive:
            raise RaftError(f"replica {self.name} is down")
        done = self.persist(arrive_us, payload)
        self.persisted_count += 1
        return done


@dataclass(frozen=True)
class CommitResult:
    commit_us: float
    leader_persist_us: float
    follower_acks_us: List[float]


class ReplicationGroup:
    """Leader + followers with majority-commit semantics."""

    def __init__(
        self,
        leader: Replica,
        followers: Sequence[Replica],
        network: NetworkModel = NetworkModel(),
    ) -> None:
        if not followers:
            raise RaftError("need at least one follower")
        self.leader = leader
        self.followers = list(followers)
        self.network = network

    @property
    def size(self) -> int:
        return 1 + len(self.followers)

    @property
    def quorum(self) -> int:
        return self.size // 2 + 1

    def replicate(self, start_us: float, payload: bytes) -> CommitResult:
        """Persist ``payload`` on a majority; returns commit timing.

        Raises :class:`RaftError` when too few replicas are alive to form
        a quorum (counting the leader).
        """
        if not self.leader.alive:
            raise RaftError("leader is down")
        leader_done = self.leader.handle_append(start_us, payload)

        acks: List[float] = []
        send_cost = self.network.rpc_us(len(payload))
        ack_cost = self.network.rpc_us(64)  # small ack message
        for follower in self.followers:
            if not follower.alive:
                continue
            arrive = start_us + send_cost
            persisted = follower.handle_append(arrive, payload)
            acks.append(persisted + ack_cost)

        alive = 1 + len(acks)
        if alive < self.quorum:
            raise RaftError(
                f"no quorum: {alive}/{self.size} alive, need {self.quorum}"
            )
        acks.sort()
        needed_acks = self.quorum - 1  # leader counts toward quorum
        commit = leader_done
        if needed_acks > 0:
            commit = max(commit, acks[needed_acks - 1])
        return CommitResult(commit, leader_done, acks)
