"""Hash-table page index (§3.2.1, §3.2.3).

Maps each uncompressed 16 KB page address to the location of its
compressed form.  Each entry keeps the three attributes the read interface
relies on (§3.2.3): compression status, the algorithm used, and — for
heavily-compressed pages — the segment identity and the page's offset
inside the decompressed segment.

The index lives in memory; every mutation is logged to the WAL by the
storage node for recovery only.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


class CompressionInfo(enum.Enum):
    """Compression status stored per index entry."""

    UNCOMPRESSED = "uncompressed"
    NORMAL = "normal"
    HEAVY = "heavy"


@dataclass(frozen=True)
class IndexEntry:
    """Location and decoding metadata for one 16 KB page."""

    status: CompressionInfo
    algorithm: Optional[str]  # codec registry name; None when uncompressed
    lba: int                  # first 4 KB logical block
    n_blocks: int             # contiguous 4 KB blocks to read
    payload_len: int          # exact compressed (or raw) byte length
    #: Heavy compression only: id of the archive segment and the page's
    #: index within the decompressed segment.
    segment_id: Optional[int] = None
    page_in_segment: Optional[int] = None
    #: Highest redo LSN folded into this materialized image.  Recovery
    #: replays only durable redo beyond this point (idempotence).
    applied_lsn: int = 0
    #: CRC-32 of the stored payload, verified on every read so silent
    #: device corruption surfaces as :class:`PageCorruptionError` instead
    #: of garbage data.  0 means "unknown" (verification skipped).
    checksum: int = 0

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise ValueError(f"n_blocks must be positive, got {self.n_blocks}")
        if self.payload_len <= 0:
            raise ValueError(f"payload_len must be positive, got {self.payload_len}")
        if self.status is CompressionInfo.HEAVY and self.segment_id is None:
            raise ValueError("heavy entries need a segment_id")
        if self.status is CompressionInfo.NORMAL and self.algorithm is None:
            raise ValueError("normal entries need an algorithm")


class PageIndex:
    """page_no -> :class:`IndexEntry` hash table."""

    def __init__(self) -> None:
        self._entries: Dict[int, IndexEntry] = {}

    def get(self, page_no: int) -> Optional[IndexEntry]:
        return self._entries.get(page_no)

    def put(self, page_no: int, entry: IndexEntry) -> Optional[IndexEntry]:
        """Insert/replace; returns the previous entry (for space frees)."""
        old = self._entries.get(page_no)
        self._entries[page_no] = entry
        return old

    def remove(self, page_no: int) -> Optional[IndexEntry]:
        return self._entries.pop(page_no, None)

    def __contains__(self, page_no: int) -> bool:
        return page_no in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[Tuple[int, IndexEntry]]:
        return iter(self._entries.items())

    @property
    def logical_bytes(self) -> int:
        from repro.common.units import DB_PAGE_SIZE

        return len(self._entries) * DB_PAGE_SIZE

    @property
    def stored_blocks(self) -> int:
        """4 KB blocks referenced by live entries (heavy pages share their
        segment's blocks, counted once per segment elsewhere)."""
        return sum(
            e.n_blocks
            for e in self._entries.values()
            if e.status is not CompressionInfo.HEAVY
        )
