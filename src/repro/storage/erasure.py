"""Reed-Solomon erasure coding (§6, "Alternative Space-Saving Approaches").

The paper lists erasure coding as an alternative to 3-way replication for
page data — while noting it "is not currently suitable for our system's
redo records" (small synchronous appends force parity read-modify-write).
This module implements both halves of that statement:

* a from-scratch systematic Reed-Solomon codec over GF(2^8) (Vandermonde
  construction, Gaussian-elimination decoding) that tolerates any ``m``
  erasures of ``k + m`` shards;
* an :class:`ECVolume` that stripes 16 KB pages across simulated devices
  with k-data + m-parity placement, serving reads through failures and
  quantifying why small appends (redo) are a poor fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ReproError

# ----------------------------------------------------------------------- #
# GF(2^8) arithmetic (AES polynomial 0x11d is conventional for RS codes)  #
# ----------------------------------------------------------------------- #

_PRIM = 0x11D
_EXP = [0] * 512
_LOG = [0] * 256


def _init_tables() -> None:
    x = 1
    for i in range(255):
        _EXP[i] = x
        _LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIM
    for i in range(255, 512):
        _EXP[i] = _EXP[i - 255]


_init_tables()


def gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(256) inverse of zero")
    return _EXP[255 - _LOG[a]]


def gf_pow(base: int, exponent: int) -> int:
    if exponent == 0:
        return 1
    if base == 0:
        return 0
    return _EXP[(_LOG[base] * exponent) % 255]


def _dot(row: Sequence[int], column: Sequence[int]) -> int:
    out = 0
    for a, b in zip(row, column):
        out ^= gf_mul(a, b)
    return out


def _mat_mul_vec(matrix: Sequence[Sequence[int]], shards: Sequence[bytes]) -> List[bytearray]:
    """Multiply an r x k GF matrix by k data shards -> r output shards."""
    shard_len = len(shards[0])
    out = [bytearray(shard_len) for _ in matrix]
    for row_index, row in enumerate(matrix):
        target = out[row_index]
        for coeff, shard in zip(row, shards):
            if coeff == 0:
                continue
            log_c = _LOG[coeff]
            for i, byte in enumerate(shard):
                if byte:
                    target[i] ^= _EXP[log_c + _LOG[byte]]
    return out


def _invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination."""
    n = len(matrix)
    aug = [row[:] + [1 if i == j else 0 for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot is None:
            raise ReproError("singular decode matrix (too many erasures?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        aug[col] = [gf_mul(value, inv_p) for value in aug[col]]
        for row in range(n):
            if row != col and aug[row][col]:
                factor = aug[row][col]
                aug[row] = [
                    value ^ gf_mul(factor, aug[col][i])
                    for i, value in enumerate(aug[row])
                ]
    return [row[n:] for row in aug]


class ReedSolomon:
    """Systematic RS(k+m, k): shards 0..k-1 are the data itself."""

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 1 or k + m > 255:
            raise ValueError(f"invalid RS parameters k={k}, m={m}")
        self.k = k
        self.m = m
        # Systematic generator from a Vandermonde matrix: build V with
        # k+m distinct evaluation points and right-multiply by the inverse
        # of its top k x k block.  Any k rows of the result are invertible
        # (any k rows of V form a Vandermonde with distinct points), which
        # is the property decode relies on.
        vandermonde = [
            [gf_pow(x, j) for j in range(k)] for x in range(k + m)
        ]
        top_inverse = _invert([row[:] for row in vandermonde[:k]])
        generator = [
            [
                _dot(vandermonde[r], [top_inverse[t][c] for t in range(k)])
                for c in range(k)
            ]
            for r in range(k + m)
        ]
        self._parity_rows = generator[k:]

    # -- encode ------------------------------------------------------------

    def encode(self, data: bytes) -> List[bytes]:
        """Split ``data`` into k shards and append m parity shards."""
        shard_len = -(-len(data) // self.k)
        padded = data + b"\x00" * (shard_len * self.k - len(data))
        shards = [
            padded[i * shard_len : (i + 1) * shard_len] for i in range(self.k)
        ]
        parity = _mat_mul_vec(self._parity_rows, shards)
        return shards + [bytes(p) for p in parity]

    # -- decode ---------------------------------------------------------------

    def decode(
        self, shards: Sequence[Optional[bytes]], data_len: int
    ) -> bytes:
        """Reconstruct the original data from any k surviving shards.

        ``shards`` has k+m slots; missing shards are ``None``.
        """
        if len(shards) != self.k + self.m:
            raise ValueError(f"expected {self.k + self.m} shard slots")
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise ReproError(
                f"unrecoverable: only {len(present)} of {self.k} needed "
                "shards survive"
            )
        if all(shards[i] is not None for i in range(self.k)):
            return b"".join(shards[: self.k])[:data_len]

        # Build the k x k matrix mapping data shards -> the k chosen
        # surviving shards, invert it, and multiply.
        chosen = present[: self.k]
        rows = []
        for index in chosen:
            if index < self.k:
                rows.append(
                    [1 if j == index else 0 for j in range(self.k)]
                )
            else:
                rows.append(self._parity_rows[index - self.k][:])
        inverse = _invert(rows)
        survivors = [bytes(shards[i]) for i in chosen]
        data_shards = _mat_mul_vec(inverse, survivors)
        return b"".join(bytes(s) for s in data_shards)[:data_len]


# ----------------------------------------------------------------------- #
# EC volume over devices                                                   #
# ----------------------------------------------------------------------- #


@dataclass(frozen=True)
class _StripeLocation:
    lba: int
    shard_bytes: int
    data_len: int


class ECVolume:
    """Pages striped RS(k+m) across ``k + m`` devices.

    Storage overhead is (k+m)/k (1.5x for 4+2) versus 3x for replication;
    reads touch k devices, writes touch all k+m.  Small sub-stripe appends
    (redo!) would require read-modify-write of every parity shard — the
    reason §6 rules EC out for redo records.
    """

    def __init__(self, devices: Sequence, k: int = 4, m: int = 2) -> None:
        if len(devices) != k + m:
            raise ValueError(f"need {k + m} devices, got {len(devices)}")
        self.devices = list(devices)
        self.rs = ReedSolomon(k, m)
        self.k = k
        self.m = m
        self._locations: Dict[int, _StripeLocation] = {}
        self._cursor = 0
        self._failed: set = set()

    def fail_device(self, index: int) -> None:
        self._failed.add(index)

    def recover_device(self, index: int) -> None:
        self._failed.discard(index)

    def write_page(self, start_us: float, page_no: int, data: bytes) -> float:
        from repro.common.units import LBA_SIZE, align_up

        shards = self.rs.encode(data)
        shard_bytes = align_up(len(shards[0]), LBA_SIZE)
        lba = self._cursor
        self._cursor += shard_bytes // LBA_SIZE
        done = start_us
        for index, (device, shard) in enumerate(zip(self.devices, shards)):
            if index in self._failed:
                continue  # degraded write; rebuilt on recovery
            padded = shard + b"\x00" * (shard_bytes - len(shard))
            done = max(done, device.write(start_us, lba, padded).done_us)
        self._locations[page_no] = _StripeLocation(lba, shard_bytes, len(data))
        return done

    def read_page(self, start_us: float, page_no: int) -> "tuple[bytes, float]":
        location = self._locations.get(page_no)
        if location is None:
            raise ReproError(f"page {page_no} does not exist")
        shards: List[Optional[bytes]] = [None] * (self.k + self.m)
        done = start_us
        available = [
            i for i in range(self.k + self.m) if i not in self._failed
        ]
        if len(available) < self.k:
            raise ReproError("too many failed devices")
        # Prefer data shards (cheapest path), fall back to parity.
        for index in sorted(available, key=lambda i: (i >= self.k, i))[: self.k]:
            completion = self.devices[index].read(
                start_us, location.lba, location.shard_bytes
            )
            done = max(done, completion.done_us)
            shard_len = -(-location.data_len // self.k)
            shards[index] = completion.data[:shard_len]
        return self.rs.decode(shards, location.data_len), done

    @property
    def storage_overhead(self) -> float:
        return (self.k + self.m) / self.k
