"""Write-ahead log for the in-memory allocator and index (§3.2.1).

The bitmap allocator and the hash-table index live in memory; their
mutations are appended here and replayed after a crash.  In production the
WAL lives on the Optane performance device; the node charges that device's
write latency per append.

Record format (little-endian)::

    u32 crc | u64 lsn | u8 type | u32 payload_len | payload

Payloads are small ``repr``-free binary encodings handled by the typed
``append_*`` helpers.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.common.checksum import crc32
from repro.common.errors import TornWALError, WALError

_HEADER = struct.Struct("<IQBI")


class WALRecordType(enum.IntEnum):
    INDEX_PUT = 1
    INDEX_REMOVE = 2
    ALLOC = 3
    FREE = 4
    CHECKPOINT = 5
    SEGMENT = 6  # heavy-compression segment placement


@dataclass(frozen=True)
class WALRecord:
    lsn: int
    type: WALRecordType
    payload: bytes

    def encode(self) -> bytes:
        # One buffer, one CRC pass over header-after-crc + payload — the
        # seed packed the header twice and concatenated a scratch copy of
        # the payload just to checksum it.
        buf = bytearray(_HEADER.size + len(self.payload))
        _HEADER.pack_into(buf, 0, 0, self.lsn, int(self.type), len(self.payload))
        buf[_HEADER.size:] = self.payload
        struct.pack_into("<I", buf, 0, crc32(memoryview(buf)[4:]))
        return bytes(buf)


class WriteAheadLog:
    """Append-only log with CRC verification and prefix truncation."""

    def __init__(self) -> None:
        self._records: List[bytes] = []
        self._next_lsn = 1
        self._truncated_below = 0
        self.appended_bytes = 0

    # -- append ----------------------------------------------------------------

    def append(self, record_type: WALRecordType, payload: bytes) -> int:
        """Append a record; returns its LSN."""
        record = WALRecord(self._next_lsn, record_type, payload)
        encoded = record.encode()
        self._records.append(encoded)
        self.appended_bytes += len(encoded)
        self._next_lsn += 1
        return record.lsn

    #: Codec-name <-> wire-id mapping for INDEX_PUT records.
    ALGORITHMS = {None: 0, "lz4": 1, "zstd": 2}
    ALGORITHM_NAMES = {0: None, 1: "lz4", 2: "zstd"}

    def append_index_put(
        self,
        page_no: int,
        lba: int,
        n_blocks: int,
        payload_len: int,
        status: int = 1,
        algorithm: Optional[str] = "zstd",
        applied_lsn: int = 0,
        segment_id: int = 0,
        page_in_segment: int = 0,
        checksum: int = 0,
    ) -> int:
        payload = struct.pack(
            "<QQIIBBQQII",
            page_no, lba, n_blocks, payload_len,
            status, self.ALGORITHMS.get(algorithm, 0), applied_lsn,
            segment_id, page_in_segment, checksum,
        )
        return self.append(WALRecordType.INDEX_PUT, payload)

    def append_index_remove(self, page_no: int) -> int:
        return self.append(WALRecordType.INDEX_REMOVE, struct.pack("<Q", page_no))

    def append_alloc(self, lba: int, n_blocks: int) -> int:
        return self.append(WALRecordType.ALLOC, struct.pack("<QI", lba, n_blocks))

    def append_free(self, lba: int, n_blocks: int) -> int:
        return self.append(WALRecordType.FREE, struct.pack("<QI", lba, n_blocks))

    def append_checkpoint(self, snapshot: bytes = b"") -> int:
        """Append a checkpoint carrying a serialized state snapshot.

        Recovery may start from the latest checkpoint instead of replaying
        the whole log; records below it become truncatable.
        """
        return self.append(WALRecordType.CHECKPOINT, snapshot)

    def append_segment(
        self, segment_id: int, compressed_len: int,
        pieces: Sequence[Tuple[int, int]], page_nos: Sequence[int],
        checksum: int = 0,
    ) -> int:
        payload = struct.pack("<QQIII", segment_id, compressed_len,
                              len(pieces), len(page_nos), checksum)
        for lba, blocks in pieces:
            payload += struct.pack("<QI", lba, blocks)
        for page_no in page_nos:
            payload += struct.pack("<Q", page_no)
        return self.append(WALRecordType.SEGMENT, payload)

    # -- replay -------------------------------------------------------------------

    def replay(self) -> Iterator[WALRecord]:
        """Yield all retained records in LSN order, verifying CRCs.

        A *torn* record (cut short mid-append by a crash) is tolerated
        only at the tail of the log: the append was never acknowledged,
        so replay simply stops there.  The same truncation — or a CRC
        mismatch — anywhere else means a committed record was damaged
        and raises :class:`WALError`.
        """
        last = len(self._records) - 1
        for i, encoded in enumerate(self._records):
            try:
                yield self._decode(encoded)
            except TornWALError:
                if i == last:
                    return
                raise

    @staticmethod
    def _decode(encoded: bytes) -> WALRecord:
        if len(encoded) < _HEADER.size:
            raise TornWALError("truncated WAL record header")
        crc, lsn, rtype, length = _HEADER.unpack_from(encoded)
        payload = encoded[_HEADER.size : _HEADER.size + length]
        if len(payload) != length:
            raise TornWALError(f"truncated WAL payload at LSN {lsn}")
        # CRC chaining over the views: same polynomial result as
        # checksumming the concatenation, without building it.
        view = memoryview(encoded)
        expected = crc32(
            view[_HEADER.size : _HEADER.size + length],
            crc32(view[4 : _HEADER.size]),
        )
        if crc != expected:
            raise WALError(f"WAL CRC mismatch at LSN {lsn}")
        try:
            record_type = WALRecordType(rtype)
        except ValueError:
            raise WALError(f"unknown WAL record type {rtype}") from None
        return WALRecord(lsn, record_type, payload)

    # -- maintenance -----------------------------------------------------------------

    def truncate_below(self, lsn: int) -> int:
        """Drop records with LSN < ``lsn`` (after a checkpoint); returns
        how many were dropped."""
        kept: List[bytes] = []
        dropped = 0
        for encoded in self._records:
            record_lsn = _HEADER.unpack_from(encoded)[1]
            if record_lsn < lsn:
                dropped += 1
            else:
                kept.append(encoded)
        self._records = kept
        self._truncated_below = max(self._truncated_below, lsn)
        return dropped

    def corrupt_record(self, index: int) -> None:
        """Flip a byte in record ``index`` (fault-injection for tests)."""
        encoded = bytearray(self._records[index])
        encoded[-1] ^= 0xFF
        self._records[index] = bytes(encoded)

    def tear_tail(self, drop_bytes: int = 1) -> None:
        """Cut ``drop_bytes`` off the final record, simulating a crash
        mid-append (fault injection; replay must ignore the torn tail)."""
        if not self._records:
            raise WALError("cannot tear an empty WAL")
        tail = self._records[-1]
        self._records[-1] = tail[: max(0, len(tail) - drop_bytes)]

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn


@dataclass(frozen=True)
class IndexPutRecord:
    page_no: int
    lba: int
    n_blocks: int
    payload_len: int
    status: int
    algorithm: Optional[str]
    applied_lsn: int
    segment_id: int
    page_in_segment: int
    checksum: int = 0


def decode_index_put(payload: bytes) -> IndexPutRecord:
    (page_no, lba, n_blocks, payload_len, status, algo_id, applied_lsn,
     segment_id, page_in_segment, checksum) = struct.unpack(
        "<QQIIBBQQII", payload
    )
    return IndexPutRecord(
        page_no, lba, n_blocks, payload_len, status,
        WriteAheadLog.ALGORITHM_NAMES.get(algo_id), applied_lsn,
        segment_id, page_in_segment, checksum,
    )


def decode_index_remove(payload: bytes) -> int:
    return struct.unpack("<Q", payload)[0]


def decode_alloc(payload: bytes) -> Tuple[int, int]:
    return struct.unpack("<QI", payload)


decode_free = decode_alloc


@dataclass(frozen=True)
class SegmentRecord:
    segment_id: int
    compressed_len: int
    pieces: Tuple[Tuple[int, int], ...]
    page_nos: Tuple[int, ...]
    checksum: int = 0


def decode_segment(payload: bytes) -> SegmentRecord:
    segment_id, compressed_len, n_pieces, n_pages, checksum = (
        struct.unpack_from("<QQIII", payload)
    )
    pos = struct.calcsize("<QQIII")
    pieces = []
    for _ in range(n_pieces):
        lba, blocks = struct.unpack_from("<QI", payload, pos)
        pos += struct.calcsize("<QI")
        pieces.append((lba, blocks))
    page_nos = []
    for _ in range(n_pages):
        page_nos.append(struct.unpack_from("<Q", payload, pos)[0])
        pos += 8
    return SegmentRecord(
        segment_id, compressed_len, tuple(pieces), tuple(page_nos), checksum
    )
