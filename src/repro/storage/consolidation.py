"""Pluggable consolidation policies for evicted redo (ROADMAP item 3).

Opt#3 (§3.3.3) is a *single-level* scheme: every page's spilled redo is
re-merged into one dedicated 4 KB block on each eviction.  That buys
1-read consolidation at the cost of rewriting the whole merged log every
time — exactly the B-tree side of the B-tree-vs-LSM write-amplification
trade described in *Closing the B-tree vs. LSM-tree Write Amplification
Gap on Modern Storage Hardware with Built-in Transparent Compression*
(arXiv:2107.13987).  On the CSD the rewrite is nearly free (the merged
log is internally redundant, so hardware compression collapses it); on
incompressible data it is the dominant write cost.

This module lifts the choice into a :class:`ConsolidationPolicy`
interface with three implementations:

:class:`SingleLevelPolicy`
    The existing behaviour, byte-identical: delegates to
    :class:`~repro.storage.perpage_log.PerPageLogStore` (or the scattered
    baseline when ``opt_per_page_log`` is off).  Never issues compaction
    tasks.

:class:`LeveledPolicy`
    LSM-style: each eviction appends a sorted *run* (page-clustered
    sealed 4 KB blocks) to L0; when L0 exceeds ``l0_limit`` runs they
    merge with L1, and levels cascade downward when their live bytes
    exceed a geometric budget (``base_level_bytes * level_ratio**n``).
    Writes are append-only (low WA); reads pay one block read per run
    containing the page (higher RA, bounded by compaction).

:class:`TieredPolicy`
    Size-tiered: runs stack up within a tier and only merge — into a
    single run in the *next* tier — once ``tier_fanout`` of them
    accumulate.  Lowest WA, highest RA.

Policies implement the full log-store protocol the storage node already
speaks (``evict``/``fetch``/``discard``/``blocks_for``/
``pages_with_logs``/``stored_bytes_for``/``allocated_blocks``) plus the
scheduler hooks ``plan_compactions()`` / ``compact()``.  The
:class:`~repro.storage.compaction.CompactionScheduler` runs the issued
tasks as engine daemons through the shared device queues.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import ReproError
from repro.common.units import KiB, LBA_SIZE, align_up
from repro.storage.perpage_log import (
    LOG_BLOCK_CAPACITY,
    FetchResult,
    PerPageLogStore,
    ScatteredLogStore,
    seal_block,
    unseal_block,
)
from repro.storage.redo import RedoRecord, decode_records, encode_records

#: Selectable policy names (``ConsolidationConfig.policy``).
POLICIES = ("single-level", "leveled", "tiered")

#: Bytes the seal header (CRC + length) takes out of each 4 KB block.
_SEAL_BYTES = LBA_SIZE - LOG_BLOCK_CAPACITY

#: Run layout order: page-clustered, then LSN — so one page's records
#: land in as few blocks as possible.
_RUN_ORDER = lambda r: (r.page_no, r.lsn, r.offset)  # noqa: E731


@dataclass
class ConsolidationConfig:
    """How evicted redo is organized on the data device (§3.3.3 family).

    Also owns the background maintenance cadence (previously hard-coded
    in ``storage/background.py``) and the scheduler's compaction-token
    throttle.
    """

    #: ``single-level`` (Opt#3, the default), ``leveled``, or ``tiered``.
    policy: str = "single-level"
    #: Background consolidation / compaction-scheduler cycle period.
    consolidate_period_us: float = 20_000.0
    #: Background checksum-scrub cycle period.
    scrub_period_us: float = 100_000.0
    #: Leveled: L0 run count that triggers the first merge.
    l0_limit: int = 4
    #: Leveled: geometric growth factor between level byte budgets.
    level_ratio: int = 4
    #: Leveled: live-byte budget of L1 (level n gets ratio**(n-1) times this).
    base_level_bytes: int = 64 * KiB
    #: Depth of the level / tier hierarchy.
    max_levels: int = 8
    #: Tiered: runs that must stack up in a tier before they merge.
    tier_fanout: int = 4
    #: Compaction tasks the scheduler may run per cycle and node
    #: (0 = unlimited).  Small values let compaction debt build up and
    #: visibly delay foreground reads — the knob the scheduler tests turn.
    compaction_tokens: int = 0

    def validate(self) -> "ConsolidationConfig":
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown consolidation.policy {self.policy!r}; "
                f"options: {', '.join(POLICIES)}"
            )
        if self.consolidate_period_us <= 0:
            raise ValueError("consolidation.consolidate_period_us must be positive")
        if self.scrub_period_us <= 0:
            raise ValueError("consolidation.scrub_period_us must be positive")
        if self.l0_limit < 1:
            raise ValueError("consolidation.l0_limit must be at least 1")
        if self.level_ratio < 2:
            raise ValueError("consolidation.level_ratio must be at least 2")
        if self.base_level_bytes < LBA_SIZE:
            raise ValueError(
                "consolidation.base_level_bytes must be at least one 4 KB block"
            )
        if self.max_levels < 2:
            raise ValueError("consolidation.max_levels must be at least 2")
        if self.tier_fanout < 2:
            raise ValueError("consolidation.tier_fanout must be at least 2")
        if self.compaction_tokens < 0:
            raise ValueError("consolidation.compaction_tokens cannot be negative")
        return self


@dataclass(frozen=True)
class CompactionTask:
    """One unit of maintenance a policy wants the scheduler to run."""

    #: Source level (leveled) or tier (tiered).
    level: int
    #: Trigger: ``l0-runs``, ``level-bytes``, or ``tier-fanout``.
    reason: str
    #: Lower runs first; L0/T0 absorb foreground flushes, so they win.
    priority: int = 1
    #: Source runs at plan time (display / debugging only).
    runs: int = 0


class SingleLevelPolicy:
    """Opt#3 as-is: the policy wrapper around the existing log stores.

    Byte-identical to pre-policy behaviour — every call delegates to the
    exact store the node used to construct directly.
    """

    name = "single-level"
    #: The background cycle folds pending redo into pages (the original
    #: consolidator loop); run-based policies leave records in runs and
    #: let compaction bound read fan-out instead.
    consolidate_on_cycle = True

    def __init__(self, device, allocator, per_page: bool = True) -> None:
        if per_page:
            self.store = PerPageLogStore(device, allocator)
            self.page_capacity_bytes: Optional[int] = LOG_BLOCK_CAPACITY
        else:
            self.store = ScatteredLogStore(device, allocator)
            self.page_capacity_bytes = None
        # Plain accounting attributes (not registry instruments: the
        # default construction path must not add instruments, or the
        # perf-harness metric fingerprints would drift).
        self.user_bytes_evicted = 0
        self.fetches = 0
        self.fetch_reads = 0
        self.compactions = 0
        self.compaction_read_bytes = 0
        self.compaction_write_bytes = 0

    # -- log-store protocol (pure delegation) -------------------------------

    def evict(self, start_us: float, records: List[RedoRecord]) -> float:
        self.user_bytes_evicted += sum(r.size_bytes for r in records)
        return self.store.evict(start_us, records)

    def fetch(self, start_us: float, page_no: int) -> FetchResult:
        result = self.store.fetch(start_us, page_no)
        self.fetches += 1
        self.fetch_reads += result.reads_issued
        return result

    def discard(self, page_no: int) -> None:
        self.store.discard(page_no)

    def blocks_for(self, page_no: int) -> int:
        return self.store.blocks_for(page_no)

    def pages_with_logs(self) -> List[int]:
        return self.store.pages_with_logs()

    def stored_bytes_for(self, page_no: int) -> int:
        return self.store.stored_bytes_for(page_no)

    @property
    def allocated_blocks(self) -> int:
        return self.store.allocated_blocks

    # -- scheduler hooks -----------------------------------------------------

    def plan_compactions(self) -> List[CompactionTask]:
        return []

    def compact(self, start_us: float, task: CompactionTask) -> float:
        raise ReproError("single-level policy issues no compaction tasks")


@dataclass
class _Run:
    """One immutable sorted run: sealed 4 KB blocks on the data device."""

    run_id: int
    level: int
    #: ``(lba, span_blocks)`` per chunk, in write order.
    blocks: List[Tuple[int, int]] = field(default_factory=list)
    #: Block span per chunk LBA (multi-block chunks for large records).
    block_span: Dict[int, int] = field(default_factory=dict)
    #: Live records per page (metadata mirror of the device contents;
    #: ``discard`` drops pages here without touching the device).
    records_by_page: Dict[int, List[RedoRecord]] = field(default_factory=dict)
    #: Which chunk LBAs hold each live page's records.
    page_lbas: Dict[int, Set[int]] = field(default_factory=dict)
    #: Encoded live bytes per page.
    page_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def live_bytes(self) -> int:
        return sum(self.page_bytes.values())

    @property
    def span_blocks(self) -> int:
        return sum(span for _, span in self.blocks)


class _RunBasedPolicy:
    """Shared machinery for the leveled and tiered policies."""

    consolidate_on_cycle = False
    page_capacity_bytes: Optional[int] = None

    def __init__(self, device, allocator, config: ConsolidationConfig) -> None:
        self._device = device
        self._allocator = allocator
        self.config = config
        self._run_ids = itertools.count(1)
        #: ``_groups[n]`` = runs at level/tier ``n``, oldest first.
        self._groups: List[List[_Run]] = [
            [] for _ in range(config.max_levels)
        ]
        self.user_bytes_evicted = 0
        self.fetches = 0
        self.fetch_reads = 0
        self.compactions = 0
        self.compaction_read_bytes = 0
        self.compaction_write_bytes = 0

    # -- run I/O -------------------------------------------------------------

    def _write_run(
        self, start_us: float, level: int, ordered: List[RedoRecord]
    ) -> Tuple[_Run, float]:
        """Persist ``ordered`` records as one run of sealed blocks."""
        run = _Run(next(self._run_ids), level)
        now = start_us
        open_records: List[RedoRecord] = []
        open_bytes = 0

        def flush(now: float) -> float:
            nonlocal open_records, open_bytes
            if not open_records:
                return now
            lba = self._allocator.allocate_blocks(LBA_SIZE)
            blob = seal_block(encode_records(open_records), LBA_SIZE)
            now = self._device.write(now, lba, blob).done_us
            run.blocks.append((lba, 1))
            run.block_span[lba] = 1
            for r in open_records:
                run.page_lbas.setdefault(r.page_no, set()).add(lba)
            open_records = []
            open_bytes = 0
            return now

        for record in ordered:
            if record.size_bytes > LOG_BLOCK_CAPACITY:
                # Large record: its own contiguous multi-block chunk.
                now = flush(now)
                nbytes = align_up(_SEAL_BYTES + record.size_bytes, LBA_SIZE)
                lba = self._allocator.allocate_blocks(nbytes)
                now = self._device.write(
                    now, lba, seal_block(record.encode(), nbytes)
                ).done_us
                span = nbytes // LBA_SIZE
                run.blocks.append((lba, span))
                run.block_span[lba] = span
                run.page_lbas.setdefault(record.page_no, set()).add(lba)
            else:
                if open_bytes + record.size_bytes > LOG_BLOCK_CAPACITY:
                    now = flush(now)
                open_records.append(record)
                open_bytes += record.size_bytes
            run.records_by_page.setdefault(record.page_no, []).append(record)
            run.page_bytes[record.page_no] = (
                run.page_bytes.get(record.page_no, 0) + record.size_bytes
            )
        now = flush(now)
        return run, now

    def _free_run(self, run: _Run) -> None:
        for lba, span in run.blocks:
            self._allocator.free_blocks(lba, span * LBA_SIZE)
            self._device.trim(lba, span * LBA_SIZE)

    def _iter_runs(self) -> List[_Run]:
        return [run for group in self._groups for run in group]

    # -- log-store protocol --------------------------------------------------

    def evict(self, start_us: float, records: List[RedoRecord]) -> float:
        """Append one sorted run to L0/T0 — no read-modify-write."""
        if not records:
            return start_us
        self.user_bytes_evicted += sum(r.size_bytes for r in records)
        ordered = sorted(records, key=_RUN_ORDER)
        run, now = self._write_run(start_us, 0, ordered)
        self._groups[0].append(run)
        return now

    def fetch(self, start_us: float, page_no: int) -> FetchResult:
        """Read the page's records from every run containing it."""
        now = start_us
        reads = 0
        records: List[RedoRecord] = []
        for run in self._iter_runs():
            for lba in sorted(run.page_lbas.get(page_no, ())):
                span = run.block_span[lba]
                completion = self._device.read(now, lba, span * LBA_SIZE)
                now = completion.done_us
                reads += 1
                parsed = decode_records(unseal_block(completion.data))
                records.extend(r for r in parsed if r.page_no == page_no)
        self.fetches += 1
        self.fetch_reads += reads
        return FetchResult(sorted(records), reads, now)

    def discard(self, page_no: int) -> None:
        """Drop a page's records; dead runs free their blocks."""
        for group in self._groups:
            for run in list(group):
                if page_no not in run.page_lbas:
                    continue
                run.page_lbas.pop(page_no, None)
                run.records_by_page.pop(page_no, None)
                run.page_bytes.pop(page_no, None)
                if not run.page_bytes:
                    self._free_run(run)
                    group.remove(run)

    def blocks_for(self, page_no: int) -> int:
        return sum(
            len(run.page_lbas.get(page_no, ())) for run in self._iter_runs()
        )

    def pages_with_logs(self) -> List[int]:
        seen: Dict[int, None] = {}
        for run in self._iter_runs():
            for page_no in run.page_lbas:
                seen.setdefault(page_no)
        return list(seen)

    def stored_bytes_for(self, page_no: int) -> int:
        return sum(
            run.page_bytes.get(page_no, 0) for run in self._iter_runs()
        )

    @property
    def allocated_blocks(self) -> int:
        return sum(run.span_blocks for run in self._iter_runs())

    # -- shared compaction core ----------------------------------------------

    def _merge_runs(
        self,
        start_us: float,
        sources: List[_Run],
        target_level: int,
    ) -> float:
        """Read, merge-sort, and rewrite ``sources`` as one target run."""
        now = start_us
        live: List[RedoRecord] = []
        for run in sources:
            for lba, span in run.blocks:
                completion = self._device.read(now, lba, span * LBA_SIZE)
                now = completion.done_us
                self.compaction_read_bytes += span * LBA_SIZE
            for records in run.records_by_page.values():
                live.extend(records)
        for run in sources:
            self._free_run(run)
        if live:
            live.sort(key=_RUN_ORDER)
            written_before = sum(r.size_bytes for r in live)
            merged, now = self._write_run(now, target_level, live)
            self._groups[target_level].append(merged)
            self.compaction_write_bytes += written_before
        self.compactions += 1
        return now


class LeveledPolicy(_RunBasedPolicy):
    """L0 overlapping runs + geometrically budgeted sorted levels."""

    name = "leveled"

    def _level_budget(self, level: int) -> int:
        return self.config.base_level_bytes * (
            self.config.level_ratio ** (level - 1)
        )

    def plan_compactions(self) -> List[CompactionTask]:
        tasks: List[CompactionTask] = []
        l0 = self._groups[0]
        if len(l0) > self.config.l0_limit:
            tasks.append(
                CompactionTask(0, "l0-runs", priority=0, runs=len(l0))
            )
        last = self.config.max_levels - 1
        for level in range(1, self.config.max_levels):
            group = self._groups[level]
            if not group:
                continue
            over = sum(run.live_bytes for run in group) > self._level_budget(level)
            if level == last:
                # The bottom level can only fold its own runs together;
                # a single over-budget run has nowhere to cascade.
                if len(group) > 1 and over:
                    tasks.append(
                        CompactionTask(
                            level, "level-bytes", priority=1, runs=len(group)
                        )
                    )
            elif over:
                tasks.append(
                    CompactionTask(
                        level, "level-bytes", priority=1, runs=len(group)
                    )
                )
        return tasks

    def compact(self, start_us: float, task: CompactionTask) -> float:
        level = task.level
        last = self.config.max_levels - 1
        target = min(level + 1, last)
        sources = list(self._groups[level])
        self._groups[level] = []
        if target != level:
            sources += self._groups[target]
            self._groups[target] = []
        return self._merge_runs(start_us, sources, target)


class TieredPolicy(_RunBasedPolicy):
    """Size-tiered: runs stack per tier, merging into the next tier."""

    name = "tiered"

    def plan_compactions(self) -> List[CompactionTask]:
        tasks: List[CompactionTask] = []
        for tier, group in enumerate(self._groups):
            if len(group) >= self.config.tier_fanout:
                tasks.append(
                    CompactionTask(
                        tier,
                        "tier-fanout",
                        priority=0 if tier == 0 else 1,
                        runs=len(group),
                    )
                )
        return tasks

    def compact(self, start_us: float, task: CompactionTask) -> float:
        tier = task.level
        target = min(tier + 1, self.config.max_levels - 1)
        sources = list(self._groups[tier])
        self._groups[tier] = []
        return self._merge_runs(start_us, sources, target)


def make_policy(
    consolidation: Optional[ConsolidationConfig],
    node_config,
    device,
    allocator,
):
    """Build the configured policy for one storage node.

    ``single-level`` respects the node's ``opt_per_page_log`` switch, so
    a default-configured node behaves exactly as before this interface
    existed.
    """
    config = consolidation if consolidation is not None else ConsolidationConfig()
    config.validate()
    if config.policy == "single-level":
        per_page = bool(getattr(node_config, "opt_per_page_log", True))
        return SingleLevelPolicy(device, allocator, per_page=per_page)
    if config.policy == "leveled":
        return LeveledPolicy(device, allocator, config)
    if config.policy == "tiered":
        return TieredPolicy(device, allocator, config)
    raise ValueError(f"unknown consolidation policy {config.policy!r}")
