"""Two-level space allocation (§3.2.1).

The centralized :class:`GlobalAllocator` hands out 128 KB extents of a
device's logical LBA space and persists its state via in-place updates.
Each logical chunk runs a :class:`BitmapAllocator` that carves those
extents into 4 KB blocks; compressed pages need their blocks *contiguous*
so a page read stays a single device I/O.  Bitmap and index mutations are
logged to the WAL purely for recovery.

:class:`SpaceManager` glues the two levels together behind the interface
the storage node uses: ``allocate(n_blocks) -> start LBA`` / ``free``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.common.errors import AllocationError, OutOfSpaceError
from repro.common.units import EXTENT_SIZE, LBA_SIZE

#: 4 KB blocks per 128 KB extent.
BLOCKS_PER_EXTENT = EXTENT_SIZE // LBA_SIZE


class GlobalAllocator:
    """Centralized extent allocator for one device's logical space."""

    def __init__(self, device_capacity: int) -> None:
        if device_capacity < EXTENT_SIZE:
            raise ValueError("device smaller than one extent")
        self.total_extents = device_capacity // EXTENT_SIZE
        # Lazy free space: extents >= _frontier were never handed out, so
        # only recycled extents need an explicit free list.  This keeps the
        # allocator O(allocated) even for multi-TB devices.
        self._frontier = 0
        self._recycled: List[int] = []
        self._allocated: Set[int] = set()

    def allocate_extent(self) -> int:
        """Return the extent index of a fresh 128 KB extent."""
        if self._recycled:
            extent = self._recycled.pop()
        elif self._frontier < self.total_extents:
            extent = self._frontier
            self._frontier += 1
        else:
            raise OutOfSpaceError("global allocator exhausted")
        self._allocated.add(extent)
        return extent

    def free_extent(self, extent: int) -> None:
        if extent not in self._allocated:
            raise AllocationError(f"double free of extent {extent}")
        self._allocated.remove(extent)
        self._recycled.append(extent)

    @property
    def allocated_extents(self) -> int:
        return len(self._allocated)

    @property
    def free_extents(self) -> int:
        return (self.total_extents - self._frontier) + len(self._recycled)

    def restore(self, allocated: Set[int]) -> None:
        """Reset state from recovery (the WAL replays chunk ownership)."""
        bad = {e for e in allocated if not 0 <= e < self.total_extents}
        if bad:
            raise AllocationError(f"extents out of range: {sorted(bad)}")
        self._allocated = set(allocated)
        self._frontier = max(allocated) + 1 if allocated else 0
        self._recycled = [
            e for e in range(self._frontier) if e not in allocated
        ]


@dataclass
class _Extent:
    index: int
    bitmap: List[bool] = field(default_factory=lambda: [False] * BLOCKS_PER_EXTENT)
    used: int = 0

    def find_run(self, n: int) -> int:
        """First offset of ``n`` contiguous free blocks, or -1."""
        run = 0
        for i, bit in enumerate(self.bitmap):
            run = 0 if bit else run + 1
            if run == n:
                return i - n + 1
        return -1

    def set_range(self, start: int, n: int, value: bool) -> None:
        for i in range(start, start + n):
            if self.bitmap[i] == value:
                state = "allocated" if value else "free"
                raise AllocationError(
                    f"extent {self.index}: block {i} already {state}"
                )
            self.bitmap[i] = value
        self.used += n if value else -n


class BitmapAllocator:
    """Per-chunk 4 KB block allocator over global extents."""

    def __init__(self, global_allocator: GlobalAllocator) -> None:
        self._global = global_allocator
        self._extents: Dict[int, _Extent] = {}

    def allocate(self, n_blocks: int) -> int:
        """Allocate ``n_blocks`` contiguous 4 KB blocks; returns start LBA."""
        if not 1 <= n_blocks <= BLOCKS_PER_EXTENT:
            raise AllocationError(
                f"cannot allocate {n_blocks} contiguous blocks "
                f"(max {BLOCKS_PER_EXTENT})"
            )
        for extent in self._extents.values():
            offset = extent.find_run(n_blocks)
            if offset >= 0:
                extent.set_range(offset, n_blocks, True)
                return extent.index * BLOCKS_PER_EXTENT + offset
        index = self._global.allocate_extent()
        extent = _Extent(index)
        self._extents[index] = extent
        extent.set_range(0, n_blocks, True)
        return index * BLOCKS_PER_EXTENT

    def free(self, start_lba: int, n_blocks: int) -> None:
        extent_index, offset = divmod(start_lba, BLOCKS_PER_EXTENT)
        extent = self._extents.get(extent_index)
        if extent is None:
            raise AllocationError(f"free of unowned extent {extent_index}")
        if offset + n_blocks > BLOCKS_PER_EXTENT:
            raise AllocationError("free range crosses extent boundary")
        extent.set_range(offset, n_blocks, False)
        if extent.used == 0:
            del self._extents[extent_index]
            self._global.free_extent(extent_index)

    def restore(self, allocations) -> None:
        """Rebuild bitmap state from ``(start_lba, n_blocks)`` pairs
        (WAL recovery)."""
        extents = {start // BLOCKS_PER_EXTENT for start, _ in allocations}
        for start, n_blocks in allocations:
            if (start + n_blocks - 1) // BLOCKS_PER_EXTENT != start // BLOCKS_PER_EXTENT:
                raise AllocationError(
                    f"allocation [{start}, +{n_blocks}) crosses an extent"
                )
        self._global.restore(extents)
        self._extents = {index: _Extent(index) for index in sorted(extents)}
        for start, n_blocks in allocations:
            extent = self._extents[start // BLOCKS_PER_EXTENT]
            extent.set_range(start % BLOCKS_PER_EXTENT, n_blocks, True)

    @property
    def used_blocks(self) -> int:
        return sum(e.used for e in self._extents.values())

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * LBA_SIZE

    @property
    def owned_extents(self) -> Set[int]:
        return set(self._extents)

    def is_allocated(self, lba: int) -> bool:
        extent_index, offset = divmod(lba, BLOCKS_PER_EXTENT)
        extent = self._extents.get(extent_index)
        return bool(extent and extent.bitmap[offset])


class SpaceManager:
    """The storage node's allocation facade.

    Wraps one global allocator and one bitmap allocator (one logical chunk
    per node in this reproduction; the cluster package models multi-chunk
    placement at a higher level).
    """

    def __init__(self, device_capacity: int) -> None:
        self.global_allocator = GlobalAllocator(device_capacity)
        self.bitmap = BitmapAllocator(self.global_allocator)

    def allocate_blocks(self, nbytes: int) -> int:
        """Allocate contiguous space for ``nbytes`` (4 KB-aligned up)."""
        n_blocks = max(1, -(-nbytes // LBA_SIZE))
        return self.bitmap.allocate(n_blocks)

    def free_blocks(self, start_lba: int, nbytes: int) -> None:
        n_blocks = max(1, -(-nbytes // LBA_SIZE))
        self.bitmap.free(start_lba, n_blocks)

    @property
    def used_bytes(self) -> int:
        return self.bitmap.used_bytes

    @property
    def reserved_bytes(self) -> int:
        """Bytes of extents claimed from the device (128 KB granularity)."""
        return self.global_allocator.allocated_extents * EXTENT_SIZE
