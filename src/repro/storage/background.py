"""Background maintenance as engine processes.

The storage layer's housekeeping — scrubbing, page consolidation /
compaction, and deferred FTL garbage collection — used to run only when
a caller chose a moment to invoke it synchronously.  On the event kernel
it becomes what it is in the paper's system: daemons that periodically
steal device time from the same queues the foreground traffic uses.
Every slice of background I/O goes through the shared per-device state,
so a scrub pass genuinely delays concurrent reads (and vice versa: a
busy device pushes the scrubber's completion out).

Since the consolidation path became policy-pluggable
(:mod:`repro.storage.consolidation`), the consolidator daemon is the
:class:`~repro.storage.compaction.CompactionScheduler`: for the default
single-level policy it behaves byte-identically to the old fixed loop,
while run-based policies get their compaction tasks executed between
consolidation cycles.  Daemon periods default to the volume's
:class:`~repro.storage.consolidation.ConsolidationConfig` instead of
hard-coded constants.

The daemons are infinite loops; :meth:`repro.engine.Engine.run_until_complete`
returns once the foreground processes finish, and the daemons can be
:meth:`~repro.engine.Process.cancel`-ed (or simply dropped with the
engine) afterwards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine import Engine, Process
from repro.storage.compaction import CompactionScheduler, _store_consolidation

#: Default-from-config sentinel: ``start_background`` keeps ``None`` as
#: "skip this daemon", so the config default needs its own marker.
_FROM_CONFIG = object()


def scrubber_proc(store, engine: Engine, period_us: Optional[float] = None):
    """Periodic checksum scrub of every replica copy (detect-and-repair).

    Each cycle runs one full scrub pass through the shared device
    queues, then idles for ``period_us`` (default: the volume's
    ``consolidation.scrub_period_us``).
    """
    if period_us is None:
        period_us = _store_consolidation(store).scrub_period_us
    cycles = store.metrics.counter("storage.background.scrub_cycles")
    while True:
        yield engine.timeout(period_us)
        done = store.scrub(engine.now_us)
        cycles.inc()
        if done > engine.now_us:
            yield engine.sleep_until(done)


def consolidator_proc(store, engine: Engine, period_us: Optional[float] = None):
    """Periodic page generation + compaction via the scheduler.

    For the single-level policy each cycle applies cached/spilled redo to
    pages on every live node (the continuous up-to-LSN\\ :sub:`min` work
    of §2.1) exactly as the pre-scheduler loop did; leveled/tiered
    policies instead get their planned compaction tasks executed.
    ``period_us`` defaults to ``consolidation.consolidate_period_us``.
    """
    scheduler = CompactionScheduler(store, engine, period_us=period_us)
    yield from scheduler.proc()


def start_background(
    store,
    engine: Engine,
    scrub_period_us: Optional[float] = _FROM_CONFIG,  # type: ignore[assignment]
    consolidate_period_us: Optional[float] = _FROM_CONFIG,  # type: ignore[assignment]
    gc_period_us: Optional[float] = None,
) -> List[Process]:
    """Spawn the volume's maintenance daemons; returns the processes.

    Periods default to the volume's consolidation config
    (``scrub_period_us`` / ``consolidate_period_us``); pass ``None`` to
    skip that daemon.  ``gc_period_us`` additionally starts each data
    device's deferred-GC drain (only meaningful when the store was bound
    with ``defer_gc=True``).
    """
    config = _store_consolidation(store)
    if scrub_period_us is _FROM_CONFIG:
        scrub_period_us = config.scrub_period_us
    if consolidate_period_us is _FROM_CONFIG:
        consolidate_period_us = config.consolidate_period_us
    procs: List[Process] = []
    if scrub_period_us is not None:
        procs.append(
            engine.spawn(
                scrubber_proc(store, engine, scrub_period_us),
                name="bg-scrubber",
            )
        )
    if consolidate_period_us is not None:
        procs.append(
            engine.spawn(
                consolidator_proc(store, engine, consolidate_period_us),
                name="bg-consolidator",
            )
        )
    if gc_period_us is not None:
        for i, node in enumerate(store.nodes):
            procs.append(
                engine.spawn(
                    node.data_device.gc_proc(gc_period_us),
                    name=f"bg-gc-{i}",
                )
            )
    return procs
