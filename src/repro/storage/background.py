"""Background maintenance as engine processes.

The storage layer's housekeeping — scrubbing, page consolidation, and
deferred FTL garbage collection — used to run only when a caller chose a
moment to invoke it synchronously.  On the event kernel it becomes what
it is in the paper's system: daemons that periodically steal device time
from the same queues the foreground traffic uses.  Every slice of
background I/O goes through the shared per-device state, so a scrub pass
genuinely delays concurrent reads (and vice versa: a busy device pushes
the scrubber's completion out).

The daemons are infinite loops; :meth:`repro.engine.Engine.run_until_complete`
returns once the foreground processes finish, and the daemons can be
:meth:`~repro.engine.Process.cancel`-ed (or simply dropped with the
engine) afterwards.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine import Engine, Process


def scrubber_proc(store, engine: Engine, period_us: float = 100_000.0):
    """Periodic checksum scrub of every replica copy (detect-and-repair).

    Each cycle runs one full scrub pass through the shared device
    queues, then idles for ``period_us``.
    """
    cycles = store.metrics.counter("storage.background.scrub_cycles")
    while True:
        yield engine.timeout(period_us)
        done = store.scrub(engine.now_us)
        cycles.inc()
        if done > engine.now_us:
            yield engine.sleep_until(done)


def consolidator_proc(store, engine: Engine, period_us: float = 20_000.0):
    """Periodic page generation: apply cached/spilled redo to pages on
    every live node (the continuous up-to-LSN\\ :sub:`min` work of §2.1),
    so foreground reads find materialized pages instead of paying the
    consolidation on their own critical path."""
    cycles = store.metrics.counter("storage.background.consolidate_cycles")
    while True:
        yield engine.timeout(period_us)
        for i, node in enumerate(store.nodes):
            if not store._alive[i]:
                continue
            done = node.consolidate_pending(engine.now_us)
            if done > engine.now_us:
                yield engine.sleep_until(done)
        cycles.inc()


def start_background(
    store,
    engine: Engine,
    scrub_period_us: Optional[float] = 100_000.0,
    consolidate_period_us: Optional[float] = 20_000.0,
    gc_period_us: Optional[float] = None,
) -> List[Process]:
    """Spawn the volume's maintenance daemons; returns the processes.

    Pass ``None`` for a period to skip that daemon.  ``gc_period_us``
    additionally starts each data device's deferred-GC drain (only
    meaningful when the store was bound with ``defer_gc=True``).
    """
    procs: List[Process] = []
    if scrub_period_us is not None:
        procs.append(
            engine.spawn(
                scrubber_proc(store, engine, scrub_period_us),
                name="bg-scrubber",
            )
        )
    if consolidate_period_us is not None:
        procs.append(
            engine.spawn(
                consolidator_proc(store, engine, consolidate_period_us),
                name="bg-consolidator",
            )
        )
    if gc_period_us is not None:
        for i, node in enumerate(store.nodes):
            procs.append(
                engine.spawn(
                    node.data_device.gc_proc(gc_period_us),
                    name=f"bg-gc-{i}",
                )
            )
    return procs
