"""Page-level deduplication analysis (§6).

The paper's discussion argues deduplication helps little in RDBMSs
"since data is typically stored at the record level, making exact
page-level deduplication matches rare."  This module implements an inline
content-hash dedup index so that claim is measurable rather than asserted:
run it over database page streams and the dedup ratio comes out ~1.0,
while backup-style streams (repeated full copies) dedup heavily.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class DedupStats:
    logical_pages: int = 0
    unique_pages: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Logical/unique; 1.0 means dedup found nothing."""
        if self.unique_pages == 0:
            return 1.0
        return self.logical_pages / self.unique_pages

    @property
    def saved_fraction(self) -> float:
        if self.logical_pages == 0:
            return 0.0
        return 1.0 - self.unique_pages / self.logical_pages


class DedupIndex:
    """Inline, exact, page-granular dedup (fingerprint -> refcount)."""

    def __init__(self) -> None:
        self._refs: Dict[bytes, int] = {}
        self._page_fp: Dict[int, bytes] = {}
        self.stats = DedupStats()

    @staticmethod
    def fingerprint(page: bytes) -> bytes:
        return hashlib.sha256(page).digest()

    def write(self, page_no: int, page: bytes) -> bool:
        """Index a page; returns True when it was a duplicate."""
        fp = self.fingerprint(page)
        old = self._page_fp.get(page_no)
        if old is not None:
            self._drop(old)
            self.stats.logical_pages -= 1
        self._page_fp[page_no] = fp
        self.stats.logical_pages += 1
        if fp in self._refs:
            self._refs[fp] += 1
            return True
        self._refs[fp] = 1
        self.stats.unique_pages += 1
        return False

    def remove(self, page_no: int) -> None:
        fp = self._page_fp.pop(page_no, None)
        if fp is not None:
            self.stats.logical_pages -= 1
            self._drop(fp)

    def _drop(self, fp: bytes) -> None:
        self._refs[fp] -= 1
        if self._refs[fp] == 0:
            del self._refs[fp]
            self.stats.unique_pages -= 1


def dedup_ratio_of(pages: Iterable[bytes]) -> float:
    """The dedup ratio a page stream would achieve."""
    index = DedupIndex()
    for page_no, page in enumerate(pages):
        index.write(page_no, page)
    return index.stats.dedup_ratio
