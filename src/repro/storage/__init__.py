"""The PolarStore storage node software.

Implements §3 of the paper: the lightweight software compression layer
(two-level allocator, hash-table page index, write-ahead log, 3-way Raft
replication), the three write modes (normal / no / heavy compression), and
the three DB-oriented optimizations:

* Opt#1 — redo-log writes bypass compression onto the performance device;
* Opt#2 — adaptive lz4/zstd selection per page (Algorithm 1);
* Opt#3 — per-page log co-location to remove read amplification from page
  consolidation.
"""

from repro.storage.allocator import BitmapAllocator, GlobalAllocator, SpaceManager
from repro.storage.cache import LRUCache
from repro.storage.index import CompressionInfo, IndexEntry, PageIndex
from repro.storage.node import NodeConfig, StorageNode
from repro.storage.raft import NetworkModel, ReplicationGroup
from repro.storage.store import CompressionMode, PolarStore
from repro.storage.wal import WriteAheadLog

__all__ = [
    "GlobalAllocator",
    "BitmapAllocator",
    "SpaceManager",
    "LRUCache",
    "PageIndex",
    "IndexEntry",
    "CompressionInfo",
    "WriteAheadLog",
    "NetworkModel",
    "ReplicationGroup",
    "StorageNode",
    "NodeConfig",
    "PolarStore",
    "CompressionMode",
]
