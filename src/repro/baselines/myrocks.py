"""MyRocks-style engine: LSM storage with compression on the compute node.

Exposes the same statement API as :class:`repro.db.database.PolarDB` so
the sysbench driver runs unchanged (Figure 16).  The decisive difference
from PolarStore: every codec byte — flush compression, compaction
decompress/recompress, read-path decompression — burns *compute node* CPU
(the resource users pay for), and compaction I/O competes with foreground
queries on the same device.
"""

from __future__ import annotations


import dataclasses

from repro.common.clock import ResourcePool
from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.db.rw_node import EXECUTE_CPU_US, OpResult
from repro.baselines.lsm import LSMTree


class MyRocksEngine:
    """Single-node LSM database with the PolarDB statement interface."""

    def __init__(
        self,
        volume_bytes: int = 256 * MiB,
        codec: str = "zstd",
        memtable_bytes: int = 256 * 1024,
        seed: int = 0,
    ) -> None:
        spec = dataclasses.replace(
            P5510, logical_capacity=volume_bytes, physical_capacity=volume_bytes
        )
        self.device = PlainSSD(spec, seed=seed)
        self.compute = ResourcePool("myrocks-compute", 8)
        self.lsm = LSMTree(
            self.device, self.compute, codec=codec, memtable_bytes=memtable_bytes
        )
        self._tables: set = set()

    # -- DDL/DML (PolarDB-compatible surface) -------------------------------

    def create_table(self, name: str) -> None:
        if name in self._tables:
            raise ReproError(f"table {name!r} already exists")
        self._tables.add(name)

    def _check(self, table: str) -> None:
        if table not in self._tables:
            raise ReproError(f"no such table {table!r}")

    def insert(self, now_us: float, table: str, key: int, value: bytes) -> OpResult:
        self._check(table)
        start = now_us
        done = self.lsm.put(now_us + EXECUTE_CPU_US, key, value)
        return OpResult(done, 0, len(value))

    def update(self, now_us: float, table: str, key: int, value: bytes) -> OpResult:
        return self.insert(now_us, table, key, value)

    def delete(self, now_us: float, table: str, key: int) -> OpResult:
        self._check(table)
        done = self.lsm.delete(now_us + EXECUTE_CPU_US, key)
        return OpResult(done, 0, 16)

    def select(
        self, now_us: float, table: str, key: int, ro_index: int = -1
    ) -> OpResult:
        self._check(table)
        value, done = self.lsm.get(now_us + EXECUTE_CPU_US, key)
        return OpResult(done, 1 if done > now_us + EXECUTE_CPU_US else 0, 0, value)

    def range_select(
        self, now_us: float, table: str, low: int, high: int
    ) -> OpResult:
        self._check(table)
        rows, now = self.lsm.range(now_us + EXECUTE_CPU_US, low, high)
        return OpResult(now, 0, 0, b"".join(value for _, value in rows))

    def bulk_load(self, now_us: float, table: str, rows) -> float:
        self._check(table)
        now = now_us
        for key, value in rows:
            now = self.lsm.put(now, key, value)
        return now

    def checkpoint(self, now_us: float) -> float:
        return self.lsm.flush_now(now_us)

    # -- space ------------------------------------------------------------------

    @property
    def physical_bytes(self) -> int:
        return self.lsm.stored_bytes

    def compression_ratio(self) -> float:
        stored = self.lsm.stored_bytes
        if stored == 0:
            return 1.0
        return self.lsm.stats.user_write_bytes / stored
