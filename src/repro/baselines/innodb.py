"""InnoDB-style compression baselines (§2.2.1, Figure 3 b).

Two pieces:

:class:`InnoDBStore`
    A page store over a plain SSD that compresses 16 KB pages into 4 KB
    **file blocks** at the compute node — table compression maps each page
    to 1/2/4 file blocks (never 3: InnoDB's KEY_BLOCK_SIZE semantics),
    page compression stores any ceil-aligned count and hole-punches the
    rest.  Either way, codec CPU runs on the compute node and 4 KB block
    granularity wastes the space Figure 2a quantifies.

:class:`InnoDBEngine`
    The same statement API as :class:`~repro.db.database.PolarDB`, backed
    by the shared B+tree/buffer-pool code in write-back mode (dirty pages
    must be compressed and flushed on eviction — on the query path) with a
    local redo log on the same device.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import ResourcePool
from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, LBA_SIZE, MiB, ceil_div
from repro.compression.base import get_codec
from repro.compression.cost import codec_cost
from repro.csd.device import PlainSSD
from repro.csd.specs import P5510
from repro.db.btree import BPlusTree
from repro.db.bufferpool import BufferPool, OpContext
from repro.db.rw_node import COMMIT_CPU_US, EXECUTE_CPU_US, OpResult


@dataclass(frozen=True)
class _PageLocation:
    lba: int
    n_blocks: int
    payload_len: int
    compressed: bool


@dataclass(frozen=True)
class _StoreResult:
    data: Optional[bytes]
    done_us: float

    @property
    def commit_us(self) -> float:
        return self.done_us


class InnoDBStore:
    """Compute-side compressed page store on a conventional SSD."""

    def __init__(
        self,
        volume_bytes: int = 256 * MiB,
        codec: str = "zstd",
        table_compression: bool = True,
        seed: int = 0,
        compute=None,
    ) -> None:
        spec = dataclasses.replace(
            P5510, logical_capacity=volume_bytes, physical_capacity=volume_bytes
        )
        self.device = PlainSSD(spec, seed=seed)
        self.codec_name = codec
        #: Compute-node cores the codec work runs on (None = uncontended).
        self.compute = compute
        #: True: table compression (1/2/4-block sizes); False: page
        #: compression with hole punching (any ceil-aligned size).
        self.table_compression = table_compression
        self._locations: Dict[int, _PageLocation] = {}
        self._lba_cursor = 0
        self._free: Dict[int, List[int]] = {}  # n_blocks -> [lba]
        self.compress_cpu_us = 0.0
        self.decompress_cpu_us = 0.0

    # -- helpers ------------------------------------------------------------

    def _blocks_for(self, payload_len: int) -> int:
        raw = ceil_div(payload_len, LBA_SIZE)
        if not self.table_compression:
            return min(raw, DB_PAGE_SIZE // LBA_SIZE)
        # Table compression: page sizes are powers of two (4/8/16 KB).
        for blocks in (1, 2, 4):
            if raw <= blocks:
                return blocks
        return 4

    def _allocate(self, n_blocks: int) -> int:
        free = self._free.get(n_blocks)
        if free:
            return free.pop()
        lba = self._lba_cursor
        capacity_blocks = self.device.spec.logical_capacity // LBA_SIZE
        if lba + n_blocks > capacity_blocks:
            raise ReproError("InnoDB store device full")
        self._lba_cursor += n_blocks
        return lba

    def _release(self, location: _PageLocation) -> None:
        self._free.setdefault(location.n_blocks, []).append(location.lba)
        self.device.trim(location.lba, location.n_blocks * LBA_SIZE)

    # -- page API (BufferPool-compatible) ----------------------------------------

    def write_page(self, start_us: float, page_no: int, data: bytes) -> _StoreResult:
        if len(data) != DB_PAGE_SIZE:
            raise ReproError("InnoDB store writes whole pages")
        codec = get_codec(self.codec_name)
        cost = codec_cost(self.codec_name)
        payload = codec.compress(data)
        cpu = cost.compress_us(len(data))
        self.compress_cpu_us += cpu
        # Compression on the compute node, in line with the query.
        if self.compute is not None:
            now = self.compute.serve(start_us, cpu)
        else:
            now = start_us + cpu
        if len(payload) >= DB_PAGE_SIZE:
            payload, compressed = data, False
        else:
            compressed = True
        n_blocks = self._blocks_for(len(payload))
        if n_blocks * LBA_SIZE >= DB_PAGE_SIZE:
            payload, compressed = data, False
            n_blocks = DB_PAGE_SIZE // LBA_SIZE
        old = self._locations.get(page_no)
        lba = self._allocate(n_blocks)
        padded = payload + b"\x00" * (n_blocks * LBA_SIZE - len(payload))
        completion = self.device.write(now, lba, padded)
        self._locations[page_no] = _PageLocation(
            lba, n_blocks, len(payload), compressed
        )
        if old is not None:
            self._release(old)
        return _StoreResult(None, completion.done_us)

    def read_page(self, start_us: float, page_no: int) -> _StoreResult:
        location = self._locations.get(page_no)
        if location is None:
            raise ReproError(f"InnoDB store: page {page_no} does not exist")
        completion = self.device.read(
            start_us, location.lba, location.n_blocks * LBA_SIZE
        )
        now = completion.done_us
        payload = completion.data[: location.payload_len]
        if location.compressed:
            data = get_codec(self.codec_name).decompress(payload)
            cpu = codec_cost(self.codec_name).decompress_us(
                location.n_blocks * LBA_SIZE
            )
            self.decompress_cpu_us += cpu
            # Decompression on the compute node, in line with the query.
            if self.compute is not None:
                now = self.compute.serve(now, cpu)
            else:
                now += cpu
        else:
            data = payload
        return _StoreResult(data, now)

    # -- space -------------------------------------------------------------------------

    @property
    def logical_bytes(self) -> int:
        return len(self._locations) * DB_PAGE_SIZE

    @property
    def physical_bytes(self) -> int:
        """Data-area blocks held, including free-list fragmentation.

        (Computed from the allocator, not the raw device, so the redo-log
        ring the engine shares the device with is excluded.)
        """
        live = sum(loc.n_blocks for loc in self._locations.values())
        fragmented = sum(
            n_blocks * len(lbas) for n_blocks, lbas in self._free.items()
        )
        return (live + fragmented) * LBA_SIZE

    def compression_ratio(self) -> float:
        physical = self.physical_bytes
        if physical == 0:
            return 1.0
        return self.logical_bytes / physical


class InnoDBEngine:
    """InnoDB-with-compression database exposing the PolarDB surface."""

    def __init__(
        self,
        volume_bytes: int = 256 * MiB,
        buffer_pool_pages: int = 256,
        codec: str = "zstd",
        table_compression: bool = True,
        seed: int = 0,
    ) -> None:
        self.cpu = ResourcePool("innodb-cpu", 8)
        self.store = InnoDBStore(
            volume_bytes, codec, table_compression, seed=seed, compute=self.cpu
        )
        self.pool = BufferPool(buffer_pool_pages, self.store, writeback=True)
        self.trees: Dict[str, BPlusTree] = {}
        self._next_page_no = 1
        self._next_lsn = 1
        # Redo on the same device (no separate performance layer).
        self._redo_cursor = self.store.device.spec.logical_capacity // LBA_SIZE - 1

    def _allocate_page_no(self) -> int:
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def create_table(self, name: str) -> None:
        if name in self.trees:
            raise ReproError(f"table {name!r} already exists")
        self.trees[name] = BPlusTree(self.pool, self._allocate_page_no)

    def _tree(self, name: str) -> BPlusTree:
        if name not in self.trees:
            raise ReproError(f"no such table {name!r}")
        return self.trees[name]

    def _commit(self, ctx: OpContext, redo_bytes: int) -> float:
        """Local redo write (one 4 KB block at the log tail)."""
        ctx.charge_cpu(COMMIT_CPU_US)
        lba = self._redo_cursor
        self._redo_cursor -= 1
        if self._redo_cursor < self.store._lba_cursor + 8:
            self._redo_cursor = (
                self.store.device.spec.logical_capacity // LBA_SIZE - 1
            )
        completion = self.store.device.write(ctx.now_us, lba, b"\x00" * LBA_SIZE)
        return completion.done_us

    def _finish_write(self, ctx: OpContext) -> Tuple[float, int]:
        redo_bytes = 0
        for _, page in self.pool.drain_touched().items():
            redo_bytes += sum(len(d) for _, d in page.drain_mods())
        done = self._commit(ctx, redo_bytes)
        self._next_lsn += 1
        return done, redo_bytes

    # -- statements --------------------------------------------------------------

    def _start(self, now_us: float) -> OpContext:
        return OpContext(self.cpu.serve(now_us, EXECUTE_CPU_US))

    def insert(self, now_us: float, table: str, key: int, value: bytes) -> OpResult:
        ctx = self._start(now_us)
        self._tree(table).insert(ctx, key, value, self._next_lsn)
        done, redo = self._finish_write(ctx)
        return OpResult(done, ctx.io_reads, redo)

    def update(self, now_us: float, table: str, key: int, value: bytes) -> OpResult:
        ctx = self._start(now_us)
        if not self._tree(table).update(ctx, key, value, self._next_lsn):
            raise ReproError(f"update of missing key {key}")
        done, redo = self._finish_write(ctx)
        return OpResult(done, ctx.io_reads, redo)

    def delete(self, now_us: float, table: str, key: int) -> OpResult:
        ctx = self._start(now_us)
        if not self._tree(table).delete(ctx, key, self._next_lsn):
            raise ReproError(f"delete of missing key {key}")
        done, redo = self._finish_write(ctx)
        return OpResult(done, ctx.io_reads, redo)

    def select(
        self, now_us: float, table: str, key: int, ro_index: int = -1
    ) -> OpResult:
        ctx = self._start(now_us)
        value = self._tree(table).search(ctx, key)
        self.pool.drain_touched()
        return OpResult(ctx.now_us, ctx.io_reads, 0, value)

    def range_select(self, now_us: float, table: str, low: int, high: int) -> OpResult:
        ctx = self._start(now_us)
        rows = self._tree(table).range_scan(ctx, low, high)
        self.pool.drain_touched()
        return OpResult(ctx.now_us, ctx.io_reads, 0, b"".join(v for _, v in rows))

    def bulk_load(self, now_us: float, table: str, rows) -> float:
        now = now_us
        tree = self._tree(table)
        for key, value in rows:
            ctx = OpContext(now)
            tree.insert(ctx, key, value, self._next_lsn)
            self._next_lsn += 1
            now = ctx.now_us
        self.pool.drain_touched()
        return now

    def checkpoint(self, now_us: float) -> float:
        """Flush every dirty page (compress + write, compute-side)."""
        now = now_us
        for page_no in list(self.pool._pages._items):
            page = self.pool.lookup(page_no)
            if page is not None and page.dirty:
                result = self.store.write_page(now, page_no, page.to_bytes())
                now = result.done_us
                page.dirty = False
        return now

    # -- space ---------------------------------------------------------------------------

    @property
    def physical_bytes(self) -> int:
        return self.store.physical_bytes

    def compression_ratio(self) -> float:
        return self.store.compression_ratio()
