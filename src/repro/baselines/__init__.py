"""Baseline compression approaches the paper compares against (§2.2, §5.3).

* :mod:`repro.baselines.lsm` — an LSM-tree substrate (memtable, SSTables,
  leveled compaction with compression during compaction).
* :mod:`repro.baselines.myrocks` — a MyRocks-style engine over the LSM
  substrate, with compaction CPU billed to the compute node.
* :mod:`repro.baselines.innodb` — InnoDB-style table/page compression on a
  B+tree with 4 KB file-block alignment and compute-side codec work.
* :mod:`repro.baselines.logstructured` — a log-structured block store with
  compression at segment compaction and page-spanning read amplification.
"""

from repro.baselines.innodb import InnoDBEngine, InnoDBStore
from repro.baselines.lsm import LSMTree
from repro.baselines.logstructured import LogStructuredStore
from repro.baselines.myrocks import MyRocksEngine

__all__ = [
    "LSMTree",
    "MyRocksEngine",
    "InnoDBEngine",
    "InnoDBStore",
    "LogStructuredStore",
]
