"""LSM-tree substrate with compression at compaction (§2.2.1, Figure 3 a).

A real (if compact) LSM implementation: a sorted in-memory memtable, L0
flushes, and leveled compaction that merges runs into the next level.
Compression happens exactly where LSM engines do it — when blocks are
written during flush/compaction — and that is also where the approach's
costs live: compaction re-reads, decompresses, re-compresses, and rewrites
data (write/CPU amplification), competing with foreground operations.

All payloads are real bytes through the real codecs; block reads go
through the shared device model, and codec CPU is charged to a compute
:class:`~repro.common.clock.Resource` shared with query execution.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import Resource
from repro.common.errors import ReproError
from repro.common.units import KiB, LBA_SIZE, align_up
from repro.compression.base import get_codec
from repro.compression.cost import codec_cost

_ENTRY = struct.Struct("<QIB")  # key, value_len, tombstone
_TOMBSTONE = 1

#: Uncompressed SSTable block size (RocksDB default is 4 KB before
#: compression; 16 KB keeps block counts manageable in simulation).
BLOCK_BYTES = 16 * KiB


def _encode_entries(entries: List[Tuple[int, Optional[bytes]]]) -> bytes:
    out = bytearray()
    for key, value in entries:
        if value is None:
            out += _ENTRY.pack(key, 0, _TOMBSTONE)
        else:
            out += _ENTRY.pack(key, len(value), 0)
            out += value
    return bytes(out)


def _decode_entries(blob: bytes) -> List[Tuple[int, Optional[bytes]]]:
    entries: List[Tuple[int, Optional[bytes]]] = []
    pos = 0
    while pos < len(blob):
        key, value_len, tomb = _ENTRY.unpack_from(blob, pos)
        pos += _ENTRY.size
        if tomb:
            entries.append((key, None))
        else:
            entries.append((key, bytes(blob[pos : pos + value_len])))
            pos += value_len
    return entries


@dataclass
class SSTBlock:
    first_key: int
    last_key: int
    lba: int
    n_blocks: int
    payload_len: int


@dataclass
class SSTable:
    table_id: int
    level: int
    blocks: List[SSTBlock]
    first_key: int
    last_key: int

    @property
    def stored_bytes(self) -> int:
        return sum(b.n_blocks for b in self.blocks) * LBA_SIZE


@dataclass
class LSMStats:
    flushes: int = 0
    compactions: int = 0
    compaction_read_bytes: int = 0
    compaction_write_bytes: int = 0
    user_write_bytes: int = 0

    @property
    def write_amplification(self) -> float:
        """(user + compaction rewrite) bytes per user byte — the unified
        WA definition (:func:`repro.obs.amp.write_amp`)."""
        from repro.obs.amp import write_amp

        return write_amp(
            self.user_write_bytes,
            self.user_write_bytes + self.compaction_write_bytes,
        )

    def bind_amp(self, metrics, **labels):
        """Export this tree's WA as the ``storage.amp.write`` gauge in
        ``metrics`` (the LSM baseline carries no registry of its own)."""
        from repro.obs import amp

        return amp.for_lsm(self, metrics, **labels)


class LSMTree:
    """Leveled LSM-tree over one block device."""

    def __init__(
        self,
        device,
        compute=None,
        codec: str = "zstd",
        memtable_bytes: int = 256 * KiB,
        l0_limit: int = 4,
        level_ratio: int = 4,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.compute = compute if compute is not None else Resource("lsm-compute")
        self.codec_name = codec
        self.memtable_bytes = memtable_bytes
        self.l0_limit = l0_limit
        self.level_ratio = level_ratio
        self.stats = LSMStats()
        self._memtable: Dict[int, Optional[bytes]] = {}
        self._memtable_size = 0
        self._levels: List[List[SSTable]] = [[] for _ in range(8)]
        self._next_table_id = 1
        self._lba_cursor = 0

    # -- write path --------------------------------------------------------

    def put(self, start_us: float, key: int, value: bytes) -> float:
        return self._mutate(start_us, key, value)

    def delete(self, start_us: float, key: int) -> float:
        return self._mutate(start_us, key, None)

    def _mutate(self, start_us: float, key: int, value: Optional[bytes]) -> float:
        size = _ENTRY.size + (len(value) if value else 0)
        self._memtable[key] = value
        self._memtable_size += size
        self.stats.user_write_bytes += size
        now = start_us
        if self._memtable_size >= self.memtable_bytes:
            now = self._flush(now)
            now = self._maybe_compact(now)
        return now

    def _flush(self, start_us: float) -> float:
        entries = sorted(self._memtable.items())
        self._memtable = {}
        self._memtable_size = 0
        table, now = self._write_table(start_us, entries, level=0)
        self._levels[0].append(table)
        self.stats.flushes += 1
        return now

    def _write_table(
        self,
        start_us: float,
        entries: List[Tuple[int, Optional[bytes]]],
        level: int,
    ) -> Tuple[SSTable, float]:
        codec = get_codec(self.codec_name)
        cost = codec_cost(self.codec_name)
        blocks: List[SSTBlock] = []
        now = start_us
        chunk: List[Tuple[int, Optional[bytes]]] = []
        chunk_bytes = 0

        def emit(chunk, now):
            blob = _encode_entries(chunk)
            payload = codec.compress(blob)
            # Compression CPU contends with queries on the compute node.
            now = self.compute.serve(now, cost.compress_us(len(blob)))
            stored = align_up(max(len(payload), 1), LBA_SIZE)
            lba = self._allocate(stored)
            padded = payload + b"\x00" * (stored - len(payload))
            now = self.device.write(now, lba, padded).done_us
            blocks.append(
                SSTBlock(chunk[0][0], chunk[-1][0], lba, stored // LBA_SIZE,
                         len(payload))
            )
            self.stats.compaction_write_bytes += stored if level > 0 else 0
            return now

        for key, value in entries:
            chunk.append((key, value))
            chunk_bytes += _ENTRY.size + (len(value) if value else 0)
            if chunk_bytes >= BLOCK_BYTES:
                now = emit(chunk, now)
                chunk, chunk_bytes = [], 0
        if chunk:
            now = emit(chunk, now)
        if not blocks:
            raise ReproError("flush of empty memtable")
        table = SSTable(
            self._next_table_id, level, blocks, blocks[0].first_key,
            blocks[-1].last_key,
        )
        self._next_table_id += 1
        return table, now

    def _allocate(self, nbytes: int) -> int:
        lba = self._lba_cursor
        span = nbytes // LBA_SIZE
        capacity_blocks = self.device.spec.logical_capacity // LBA_SIZE
        if lba + span > capacity_blocks:
            raise ReproError("LSM device full (no space reclamation modeled)")
        self._lba_cursor += span
        return lba

    # -- compaction ------------------------------------------------------------

    def _maybe_compact(self, start_us: float) -> float:
        now = start_us
        if len(self._levels[0]) > self.l0_limit:
            now = self._compact_level(now, 0)
        limit = self.l0_limit * self.level_ratio
        for level in range(1, len(self._levels) - 1):
            if len(self._levels[level]) > limit:
                now = self._compact_level(now, level)
            limit *= self.level_ratio
        return now

    def _compact_level(self, start_us: float, level: int) -> float:
        """Merge every run of ``level`` plus overlapping next-level runs."""
        sources = self._levels[level] + self._levels[level + 1]
        self._levels[level] = []
        self._levels[level + 1] = []
        merged: Dict[int, Optional[bytes]] = {}
        now = start_us
        cost = codec_cost(self.codec_name)
        codec = get_codec(self.codec_name)
        # Newest data wins (setdefault keeps the first-seen version):
        # shallower levels are newer, and within a level a higher table_id
        # is newer.
        for table in sorted(sources, key=lambda t: (t.level, -t.table_id)):
            for block in table.blocks:
                completion = self.device.read(now, block.lba, block.n_blocks * LBA_SIZE)
                now = completion.done_us
                blob = codec.decompress(completion.data[: block.payload_len])
                now = self.compute.serve(now, cost.decompress_us(len(blob)))
                self.stats.compaction_read_bytes += block.n_blocks * LBA_SIZE
                for key, value in _decode_entries(blob):
                    merged.setdefault(key, value)
            self._trim_table(table)
        entries = sorted(merged.items())
        if entries:
            table, now = self._write_table(now, entries, level + 1)
            self._levels[level + 1].append(table)
        self.stats.compactions += 1
        return now

    def _trim_table(self, table: SSTable) -> None:
        for block in table.blocks:
            self.device.trim(block.lba, block.n_blocks * LBA_SIZE)

    # -- read path ----------------------------------------------------------------

    def get(self, start_us: float, key: int) -> Tuple[Optional[bytes], float]:
        if key in self._memtable:
            return self._memtable[key], start_us
        now = start_us
        cost = codec_cost(self.codec_name)
        codec = get_codec(self.codec_name)
        for level, tables in enumerate(self._levels):
            # L0 newest-first; deeper levels have non-overlapping tables.
            ordered = sorted(tables, key=lambda t: -t.table_id)
            for table in ordered:
                if not table.first_key <= key <= table.last_key:
                    continue
                block = self._find_block(table, key)
                if block is None:
                    continue
                completion = self.device.read(now, block.lba, block.n_blocks * LBA_SIZE)
                now = completion.done_us
                blob = codec.decompress(completion.data[: block.payload_len])
                now = self.compute.serve(now, cost.decompress_us(len(blob)))
                for entry_key, value in _decode_entries(blob):
                    if entry_key == key:
                        return value, now
        return None, now

    def range(
        self, start_us: float, low: int, high: int
    ) -> Tuple[List[Tuple[int, bytes]], float]:
        """Iterator-style range scan: each overlapping block is read and
        decompressed once, newest version wins."""
        now = start_us
        cost = codec_cost(self.codec_name)
        codec = get_codec(self.codec_name)
        merged: Dict[int, Optional[bytes]] = {}
        for key, value in self._memtable.items():
            if low <= key <= high:
                merged[key] = value
        for tables in self._levels:
            for table in sorted(tables, key=lambda t: -t.table_id):
                if table.last_key < low or table.first_key > high:
                    continue
                for block in table.blocks:
                    if block.last_key < low or block.first_key > high:
                        continue
                    completion = self.device.read(
                        now, block.lba, block.n_blocks * LBA_SIZE
                    )
                    now = completion.done_us
                    blob = codec.decompress(completion.data[: block.payload_len])
                    now = self.compute.serve(now, cost.decompress_us(len(blob)))
                    for entry_key, value in _decode_entries(blob):
                        if low <= entry_key <= high:
                            merged.setdefault(entry_key, value)
        rows = [
            (key, value)
            for key, value in sorted(merged.items())
            if value is not None
        ]
        return rows, now

    @staticmethod
    def _find_block(table: SSTable, key: int) -> Optional[SSTBlock]:
        for block in table.blocks:
            if block.first_key <= key <= block.last_key:
                return block
        return None

    # -- space --------------------------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        return sum(t.stored_bytes for level in self._levels for t in level)

    @property
    def level_sizes(self) -> List[int]:
        return [len(level) for level in self._levels]

    def flush_now(self, start_us: float) -> float:
        """Force a memtable flush (used by space benchmarks)."""
        now = start_us
        if self._memtable:
            now = self._flush(now)
            now = self._maybe_compact(now)
        return now
