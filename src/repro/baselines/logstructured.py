"""Log-structured block storage with compression at segment compaction
(§2.2.1, Figure 3 c — Pangu-style).

Writes append into open segments.  Background compaction rewrites live
data into compressed segments; because the store compresses *segments*
rather than database pages, a 16 KB page can straddle two compressed
units, and reading it then costs two reads + two decompressions — the
misalignment penalty §2.2.1 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.units import DB_PAGE_SIZE, KiB, LBA_SIZE, align_up
from repro.compression.base import get_codec
from repro.compression.cost import codec_cost

#: Compressed unit: the compaction input granularity.
UNIT_BYTES = 64 * KiB
#: Open (uncompacted) segment size.
SEGMENT_BYTES = 256 * KiB


@dataclass
class _CompressedUnit:
    lba: int
    n_blocks: int
    payload_len: int
    #: Page addresses packed into this unit, in order.
    page_nos: Tuple[int, ...]


@dataclass
class LogStructuredStats:
    user_writes: int = 0
    compactions: int = 0
    compaction_write_bytes: int = 0
    split_page_reads: int = 0


class LogStructuredStore:
    """Page-addressable log-structured store over one block device."""

    def __init__(self, device, codec: str = "zstd") -> None:
        self.device = device
        self.codec_name = codec
        self.stats = LogStructuredStats()
        # Open log: page_no -> latest raw image (not yet compacted).
        self._open: Dict[int, bytes] = {}
        self._open_bytes = 0
        # Compacted space: page_no -> (unit, offset inside decompressed unit)
        self._compacted: Dict[int, Tuple[_CompressedUnit, int]] = {}
        # unit lba -> the unit holding the following bytes of its segment.
        self._unit_next: Dict[int, Optional[_CompressedUnit]] = {}
        self._lba_cursor = 0

    # -- write path --------------------------------------------------------

    def write_page(self, start_us: float, page_no: int, data: bytes) -> float:
        if len(data) != DB_PAGE_SIZE:
            raise ReproError("log-structured store writes whole pages")
        # Append raw to the open segment (one device write of the page).
        lba = self._allocate(DB_PAGE_SIZE)
        now = self.device.write(start_us, lba, data).done_us
        self._open[page_no] = data
        self._open_bytes += DB_PAGE_SIZE
        self.stats.user_writes += 1
        if self._open_bytes >= SEGMENT_BYTES:
            now = self._compact(now)
        return now

    def _allocate(self, nbytes: int) -> int:
        lba = self._lba_cursor
        span = nbytes // LBA_SIZE
        capacity = self.device.spec.logical_capacity // LBA_SIZE
        if lba + span > capacity:
            raise ReproError("log-structured device full")
        self._lba_cursor += span
        return lba

    #: Per-entry segment header (entry type, page address, length, crc).
    ENTRY_HEADER_BYTES = 24

    def _compact(self, start_us: float) -> float:
        """Compress the open segment into fixed-size compressed units.

        Entries are ``header + page image`` packed back to back, so page
        images drift off 16 KB alignment and a unit boundary regularly
        falls inside a page — the page's tail then spills into the next
        unit (§2.2.1's misalignment penalty).
        """
        codec = get_codec(self.codec_name)
        cost = codec_cost(self.codec_name)
        pages = sorted(self._open.items())
        self._open = {}
        self._open_bytes = 0
        raw = bytearray()
        locations: List[Tuple[int, int]] = []  # (page_no, data offset)
        for page_no, data in pages:
            raw += page_no.to_bytes(8, "little").ljust(self.ENTRY_HEADER_BYTES, b"\x5A")
            locations.append((page_no, len(raw)))
            raw += data
        raw = bytes(raw)

        units: List[_CompressedUnit] = []
        now = start_us
        for unit_start in range(0, len(raw), UNIT_BYTES):
            chunk = raw[unit_start : unit_start + UNIT_BYTES]
            payload = codec.compress(chunk)
            now += cost.compress_us(len(chunk))
            stored = align_up(max(len(payload), 1), LBA_SIZE)
            lba = self._allocate(stored)
            padded = payload + b"\x00" * (stored - len(payload))
            now = self.device.write(now, lba, padded).done_us
            self.stats.compaction_write_bytes += stored
            units.append(
                _CompressedUnit(lba, stored // LBA_SIZE, len(payload), ())
            )
        for index, unit in enumerate(units):
            self._unit_next[unit.lba] = (
                units[index + 1] if index + 1 < len(units) else None
            )
        self.stats.compactions += 1
        for page_no, offset in locations:
            unit_index = offset // UNIT_BYTES
            self._compacted[page_no] = (
                units[unit_index], offset - unit_index * UNIT_BYTES
            )
        return now

    # -- read path -----------------------------------------------------------------

    def read_page(self, start_us: float, page_no: int) -> Tuple[bytes, float, int]:
        """Returns (data, done_us, units_read)."""
        if page_no in self._open:
            return self._open[page_no], start_us, 0
        entry = self._compacted.get(page_no)
        if entry is None:
            raise ReproError(f"page {page_no} does not exist")
        unit, offset = entry
        data, now = self._read_unit(start_us, unit)
        units = 1
        if offset + DB_PAGE_SIZE <= len(data):
            return data[offset : offset + DB_PAGE_SIZE], now, units
        # The page straddles into the next unit: second read + decompress.
        self.stats.split_page_reads += 1
        head = data[offset:]
        next_unit = self._unit_after(unit)
        if next_unit is None:
            raise ReproError(f"page {page_no} tail missing")
        tail_data, now = self._read_unit(now, next_unit)
        units += 1
        tail = tail_data[: DB_PAGE_SIZE - len(head)]
        return head + tail, now, units

    def _read_unit(self, start_us: float, unit: _CompressedUnit):
        completion = self.device.read(start_us, unit.lba, unit.n_blocks * LBA_SIZE)
        codec = get_codec(self.codec_name)
        data = codec.decompress(completion.data[: unit.payload_len])
        now = completion.done_us + codec_cost(self.codec_name).decompress_us(
            len(data)
        )
        return data, now

    def _unit_after(self, unit: _CompressedUnit) -> Optional[_CompressedUnit]:
        return self._unit_next.get(unit.lba)

    # -- space -----------------------------------------------------------------------

    @property
    def split_fraction(self) -> float:
        """Fraction of compacted pages whose image straddles two units."""
        total = len(self._compacted)
        if total == 0:
            return 0.0
        split = 0
        for unit, offset in self._compacted.values():
            # The decompressed unit is UNIT_BYTES long except the last one.
            if offset + DB_PAGE_SIZE > UNIT_BYTES:
                split += 1
        return split / total
