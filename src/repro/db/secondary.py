"""Secondary indexes.

Sysbench's ``update_index`` workload updates an indexed column: the row
stays put but the secondary index entry moves.  This module provides that
structure — a B+tree whose keys are ``(secondary key, primary key)``
composites, supporting duplicate secondary values — plus maintenance
hooks the RW node drives on DML.

The composite encoding packs both 32-bit keys into the tree's 64-bit key
space: range-scanning one secondary value is a contiguous scan.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import ReproError
from repro.db.btree import BPlusTree
from repro.db.bufferpool import OpContext

_KEY_BITS = 32
_KEY_MASK = (1 << _KEY_BITS) - 1


def composite_key(secondary: int, primary: int) -> int:
    if not 0 <= secondary <= _KEY_MASK:
        raise ReproError(f"secondary key {secondary} exceeds 32 bits")
    if not 0 <= primary <= _KEY_MASK:
        raise ReproError(f"primary key {primary} exceeds 32 bits")
    return (secondary << _KEY_BITS) | primary


def split_composite(key: int) -> "tuple[int, int]":
    return key >> _KEY_BITS, key & _KEY_MASK


class SecondaryIndex:
    """A non-unique secondary index over one table."""

    def __init__(self, tree: BPlusTree) -> None:
        self.tree = tree

    def insert(
        self, ctx: OpContext, secondary: int, primary: int, lsn: int
    ) -> None:
        self.tree.insert(ctx, composite_key(secondary, primary), b"\x01", lsn)

    def delete(
        self, ctx: OpContext, secondary: int, primary: int, lsn: int
    ) -> bool:
        return self.tree.delete(ctx, composite_key(secondary, primary), lsn)

    def move(
        self,
        ctx: OpContext,
        old_secondary: int,
        new_secondary: int,
        primary: int,
        lsn: int,
    ) -> None:
        """The update-index operation: relocate one entry."""
        if old_secondary == new_secondary:
            return
        if not self.delete(ctx, old_secondary, primary, lsn):
            raise ReproError(
                f"index entry ({old_secondary}, {primary}) missing"
            )
        self.insert(ctx, new_secondary, primary, lsn)

    def lookup(self, ctx: OpContext, secondary: int) -> List[int]:
        """All primary keys carrying ``secondary`` (contiguous scan)."""
        low = composite_key(secondary, 0)
        high = composite_key(secondary, _KEY_MASK)
        return [
            split_composite(key)[1]
            for key, _ in self.tree.range_scan(ctx, low, high)
        ]

    def lookup_range(
        self, ctx: OpContext, low_secondary: int, high_secondary: int
    ) -> List["tuple[int, int]"]:
        """(secondary, primary) pairs with secondary in the given range."""
        low = composite_key(low_secondary, 0)
        high = composite_key(high_secondary, _KEY_MASK)
        return [
            split_composite(key)
            for key, _ in self.tree.range_scan(ctx, low, high)
        ]
