"""Multi-statement transactions on the RW node.

PolarDB commits a transaction by persisting its redo (including the
commit record) to shared storage (§2.1).  This module adds that grouping
on top of the per-statement engine: statements execute against the buffer
pool immediately but their redo is buffered; ``commit()`` ships it as one
replicated redo write (group commit), and ``rollback()`` restores every
touched page from byte-level before-images (undo).

Constraints kept honest:

* touched pages are pinned in the buffer pool for the transaction's life
  (uncommitted changes must not be evicted — storage could not rebuild
  them, since their redo has not shipped);
* structural B+tree changes (page splits) are redo-only as in real
  engines: rollback restores page *contents* (including parent routing
  entries), and any sibling allocated by a rolled-back split remains as
  unreferenced garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.db.bufferpool import OpContext
from repro.db.rw_node import COMMIT_CPU_US, EXECUTE_CPU_US, RWNode
from repro.storage.redo import RedoRecord


@dataclass(frozen=True)
class TxnResult:
    done_us: float
    value: Optional[bytes] = None


class Transaction:
    """One open transaction; obtain via :meth:`RWNode.begin`."""

    def __init__(self, rw: RWNode, start_us: float) -> None:
        self.rw = rw
        self.now_us = start_us
        self._pending: List[RedoRecord] = []
        self._touched: Dict[int, object] = {}
        self._tree_snapshots: Dict[str, Tuple[int, int]] = {}
        self._state = "active"

    # -- statement execution -------------------------------------------------

    def _check_active(self) -> None:
        if self._state != "active":
            raise ReproError(f"transaction is {self._state}")

    def _snapshot_tree(self, table: str) -> None:
        if table not in self._tree_snapshots:
            tree = self.rw.tree(table)
            self._tree_snapshots[table] = (tree.root_page_no, tree.height)

    def _absorb(self, ctx: OpContext) -> None:
        """Collect redo + pin pages after one statement."""
        for page_no, page in self.rw.pool.drain_touched().items():
            for offset, data in page.drain_mods():
                self._pending.append(
                    RedoRecord(self.rw._next_lsn, page_no, offset, data)
                )
                self.rw._next_lsn += 1
            # NOTE: drain_mods cleared the page's undo; capture-after-drain
            # would lose it, so Transaction must NOT mix with autocommit
            # statements on the same pages mid-flight.  We therefore keep
            # our own before-images at first touch instead.
        self.now_us = ctx.now_us

    def _remember_images(self, table: str, key_hint: int) -> None:
        """Snapshot images of pages this statement is about to touch."""
        # Conservative: snapshot the root-to-leaf path for the key.
        ctx = OpContext(self.now_us)
        from repro.db.btree import descend

        tree = self.rw.tree(table)
        page = self.rw.pool.get_page(ctx, tree.root_page_no)
        path = [page]
        from repro.db.page import PageType

        while page.page_type is PageType.INTERNAL:
            from repro.db.btree import BPlusTree

            page = self.rw.pool.get_page(
                ctx, BPlusTree._child_for(page, key_hint)
            )
            path.append(page)
        self.now_us = ctx.now_us
        self.rw.pool.drain_touched()
        for node_page in path:
            if node_page.page_no not in self._touched:
                self._touched[node_page.page_no] = node_page.to_bytes()
                self.rw.pool.pin(node_page.page_no)

    def insert(self, table: str, key: int, value: bytes) -> TxnResult:
        self._check_active()
        self._snapshot_tree(table)
        self._remember_images(table, key)
        ctx = OpContext(self.now_us + EXECUTE_CPU_US)
        self.rw.tree(table).insert(ctx, key, value, self.rw._next_lsn)
        self._pin_new_pages(ctx)
        self._absorb(ctx)
        return TxnResult(self.now_us)

    def update(self, table: str, key: int, value: bytes) -> TxnResult:
        self._check_active()
        self._snapshot_tree(table)
        self._remember_images(table, key)
        ctx = OpContext(self.now_us + EXECUTE_CPU_US)
        if not self.rw.tree(table).update(ctx, key, value, self.rw._next_lsn):
            self._absorb(ctx)
            raise ReproError(f"update of missing key {key}")
        self._pin_new_pages(ctx)
        self._absorb(ctx)
        return TxnResult(self.now_us)

    def delete(self, table: str, key: int) -> TxnResult:
        self._check_active()
        self._snapshot_tree(table)
        self._remember_images(table, key)
        ctx = OpContext(self.now_us + EXECUTE_CPU_US)
        if not self.rw.tree(table).delete(ctx, key, self.rw._next_lsn):
            self._absorb(ctx)
            raise ReproError(f"delete of missing key {key}")
        self._absorb(ctx)
        return TxnResult(self.now_us)

    def select(self, table: str, key: int) -> TxnResult:
        self._check_active()
        ctx = OpContext(self.now_us + EXECUTE_CPU_US)
        value = self.rw.tree(table).search(ctx, key)
        self.rw.pool.drain_touched()
        self.now_us = ctx.now_us
        return TxnResult(self.now_us, value)

    def _pin_new_pages(self, ctx: OpContext) -> None:
        """Pin pages that first appeared during the statement.

        Such pages are split siblings or new roots: after a rollback the
        restored routing entries no longer reference them, so their
        content is irrelevant (``None`` marks "no image to restore") —
        exactly how real engines treat structural changes as redo-only.
        """
        for page_no in self.rw.pool._touched:
            if page_no not in self._touched:
                self._touched[page_no] = None
                self.rw.pool.pin(page_no)

    # -- terminal operations -----------------------------------------------------

    def commit(self) -> float:
        """Group-commit: one replicated redo write for the whole txn."""
        self._check_active()
        self._state = "committed"
        done = self.now_us
        if self._pending:
            done = self.rw.store.write_redo(
                self.now_us + COMMIT_CPU_US, self._pending
            )
            self.rw.committed_statements += 1
        self._release_pins()
        self.now_us = done
        return done

    def rollback(self) -> float:
        """Restore every touched page to its transaction-start image."""
        self._check_active()
        self._state = "rolled-back"
        for page_no, image in self._touched.items():
            if image is None:
                continue  # page born in this txn: unreferenced after undo
            page = self.rw.pool.lookup(page_no)
            if page is not None:
                page.buf[:] = image
                page._mods = []
                page._undo = []
        for table, (root, height) in self._tree_snapshots.items():
            tree = self.rw.tree(table)
            tree.root_page_no = root
            tree.height = height
        self._pending = []
        self.rw.pool.drain_touched()
        self._release_pins()
        return self.now_us

    def _release_pins(self) -> None:
        for page_no in self._touched:
            self.rw.pool.unpin(page_no)
