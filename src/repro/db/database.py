"""A PolarDB instance: RW node + RO nodes + shared PolarStore."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.db.ro_node import RONode
from repro.db.rw_node import RWNode
from repro.storage.node import NodeConfig
from repro.storage.store import PolarStore


class PolarDB:
    """Convenience wiring of the whole stack for examples and benchmarks."""

    def __init__(
        self,
        store: Optional[PolarStore] = None,
        config: Optional[NodeConfig] = None,
        buffer_pool_pages: int = 256,
        ro_nodes: int = 1,
        volume_bytes: int = 256 * 1024 * 1024,
        seed: int = 0,
    ) -> None:
        if store is None:
            store = PolarStore(
                config if config is not None else NodeConfig(),
                volume_bytes=volume_bytes,
                seed=seed,
            )
        self.store = store
        self.rw = RWNode(store, buffer_pool_pages)
        self.ro: List[RONode] = [
            RONode(store, self.rw, buffer_pool_pages) for _ in range(ro_nodes)
        ]
        self._sim_engine = None

    @classmethod
    def from_config(cls, config) -> "PolarDB":
        """Build an instance from a :class:`repro.api.ReproConfig` (the
        same wiring :meth:`repro.api.PolarStore.open` uses)."""
        from repro.api.factory import build_db

        return build_db(config)

    # -- engine wiring -------------------------------------------------------

    def bind_engine(
        self,
        engine,
        group_commit_window_us: float = 0.0,
        qd: Optional[int] = None,
        defer_gc: bool = False,
    ) -> None:
        """Run the whole instance on one shared discrete-event kernel:
        device queues, compute core pools, and the redo group-commit
        pipeline all serve genuinely concurrent processes (what
        ``workloads.sysbench`` drives for thread-scaling figures)."""
        self._sim_engine = engine
        self.store.bind_engine(
            engine,
            group_commit_window_us=group_commit_window_us,
            qd=qd,
            defer_gc=defer_gc,
        )
        self.rw.bind_engine(engine)
        for i, ro in enumerate(self.ro):
            ro.bind_engine(engine, label=str(i))

    # -- engine-native DML (generators; require bind_engine) -----------------

    def insert_proc(self, table: str, key: int, value: bytes):
        return self.rw.insert_proc(table, key, value)

    def update_proc(self, table: str, key: int, value: bytes):
        return self.rw.update_proc(table, key, value)

    def delete_proc(self, table: str, key: int):
        return self.rw.delete_proc(table, key)

    def select_proc(self, table: str, key: int, ro_index: int = -1):
        if ro_index >= 0:
            return self.ro[ro_index].select_proc(table, key)
        return self.rw.select_proc(table, key)

    def range_select_proc(self, table: str, low: int, high: int):
        return self.rw.range_select_proc(table, low, high)

    # -- DDL/DML passthrough ------------------------------------------------

    def create_table(self, name: str) -> None:
        self.rw.create_table(name)

    def insert(self, now_us: float, table: str, key: int, value: bytes):
        return self.rw.insert(now_us, table, key, value)

    def update(self, now_us: float, table: str, key: int, value: bytes):
        return self.rw.update(now_us, table, key, value)

    def delete(self, now_us: float, table: str, key: int):
        return self.rw.delete(now_us, table, key)

    def select(self, now_us: float, table: str, key: int, ro_index: int = -1):
        """Point select; ``ro_index >= 0`` routes to a read-only node."""
        if ro_index >= 0:
            return self.ro[ro_index].select(now_us, table, key)
        return self.rw.select(now_us, table, key)

    def range_select(self, now_us: float, table: str, low: int, high: int):
        return self.rw.range_select(now_us, table, low, high)

    def bulk_load(
        self, now_us: float, table: str, rows: List[Tuple[int, bytes]]
    ) -> float:
        return self.rw.bulk_load(now_us, table, rows)

    def checkpoint(self, now_us: float) -> float:
        """Force the storage layer to materialize all pending redo."""
        done = self.store.checkpoint(now_us)
        from repro.obs.events import recorder_active

        rec = recorder_active()
        if rec is not None:
            rec.emit(
                done, "db", "checkpoint",
                duration_us=round(done - now_us, 3),
            )
        return done

    # -- observability ----------------------------------------------------------

    @property
    def metrics(self):
        """The volume-wide :class:`~repro.obs.metrics.MetricsRegistry` —
        every layer (db, storage, compression, csd) publishes here."""
        return self.store.metrics

    def compression_ratio(self) -> float:
        return self.store.compression_ratio()

    @property
    def logical_bytes(self) -> int:
        return self.store.logical_used_bytes

    @property
    def physical_bytes(self) -> int:
        return self.store.physical_used_bytes
