"""The read-write compute node.

Executes DML against B+trees held in its buffer pool, converts the exact
byte modifications of touched pages into redo records, and commits each
statement by replicating that redo to shared storage (the transaction-
commit critical path, §3.3).  Dirty pages are never written back — storage
regenerates them from redo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.engine import ResourcePool
from repro.db.btree import BPlusTree
from repro.db.bufferpool import BufferPool, OpContext
from repro.storage.redo import RedoRecord

#: CPU cost of parsing + executing one simple statement (µs).
EXECUTE_CPU_US = 18.0
#: Extra CPU at commit (txn bookkeeping, §2.1 log record of commit).
COMMIT_CPU_US = 4.0


@dataclass(frozen=True)
class OpResult:
    """Latency breakdown of one statement."""

    done_us: float
    io_reads: int
    redo_bytes: int
    value: Optional[bytes] = None

    def latency_us(self, start_us: float) -> float:
        return self.done_us - start_us


class RWNode:
    """The single read-write node of a PolarDB instance."""

    def __init__(
        self, store, buffer_pool_pages: int = 256, cpu_cores: int = 8
    ) -> None:
        self.store = store
        self.pool = BufferPool(buffer_pool_pages, store)
        self.trees: Dict[str, BPlusTree] = {}
        self._next_page_no = 1
        self._next_lsn = 1
        self.committed_statements = 0
        #: The compute instance's cores (the paper evaluates an 8-core
        #: instance); statement CPU queues here under high concurrency.
        self.cpu = ResourcePool("rw-cpu", cpu_cores)
        self.secondary_indexes: Dict[str, object] = {}
        self._sim_engine = None

    def bind_engine(self, engine) -> None:
        """Attach the core pool to a shared event kernel: statement CPU
        becomes a real FIFO queue and its wait times feed the volume
        registry."""
        self._sim_engine = engine
        self.cpu.bind_engine(engine)
        registry = getattr(self.store, "metrics", None)
        if registry is not None:
            self.cpu.bind_metrics(registry, node="rw")

    def _start_statement(self, start_us: float) -> OpContext:
        return OpContext(self.cpu.serve(start_us, EXECUTE_CPU_US))

    # -- catalog ------------------------------------------------------------

    def create_table(self, name: str) -> BPlusTree:
        if name in self.trees:
            raise ReproError(f"table {name!r} already exists")
        tree = BPlusTree(self.pool, self._allocate_page_no)
        self.trees[name] = tree
        # The catalog change itself generates redo.
        return tree

    def create_secondary_index(self, table: str, index_name: str):
        """Create a non-unique secondary index on ``table``.

        Maintained explicitly via the returned handle's insert/move/delete
        (the sysbench ``update_index`` mechanics); its pages flow through
        the same buffer pool and redo pipeline as everything else.
        """
        from repro.db.secondary import SecondaryIndex

        self.tree(table)  # validate the base table exists
        catalog_name = f"{table}.{index_name}"
        if catalog_name in self.trees:
            raise ReproError(f"index {catalog_name!r} already exists")
        tree = BPlusTree(self.pool, self._allocate_page_no)
        self.trees[catalog_name] = tree
        index = SecondaryIndex(tree)
        self.secondary_indexes[catalog_name] = index
        return index

    def _allocate_page_no(self) -> int:
        page_no = self._next_page_no
        self._next_page_no += 1
        return page_no

    def tree(self, name: str) -> BPlusTree:
        if name not in self.trees:
            raise ReproError(f"no such table {name!r}")
        return self.trees[name]

    # -- redo plumbing ---------------------------------------------------------

    def _collect_redo(self) -> List[RedoRecord]:
        records: List[RedoRecord] = []
        for page_no, page in self.pool.drain_touched().items():
            for offset, data in page.drain_mods():
                records.append(RedoRecord(self._next_lsn, page_no, offset, data))
                self._next_lsn += 1
        return records

    def _commit(self, ctx: OpContext) -> Tuple[float, int]:
        """Persist this statement's redo; returns (commit time, bytes)."""
        records = self._collect_redo()
        if not records:
            return ctx.now_us, 0
        ctx.now_us = self.cpu.serve(ctx.now_us, COMMIT_CPU_US)
        commit_us = self.store.write_redo(ctx.now_us, records)
        self.committed_statements += 1
        return commit_us, sum(r.size_bytes for r in records)

    @property
    def current_lsn(self) -> int:
        return self._next_lsn

    # -- statement bodies (shared by the sync and engine-native paths) -------

    # Each DML statement is one body closure over (table, key, ...); the
    # two execution paths — analytic `_statement` and engine-native
    # `_statement_proc` — differ only in how CPU and commit time are
    # charged, never in what the statement does.

    def _insert_body(self, table: str, key: int, value: bytes):
        def body(ctx: OpContext):
            self.tree(table).insert(ctx, key, value, self._next_lsn)

        return body

    def _update_body(self, table: str, key: int, value: bytes):
        def body(ctx: OpContext):
            if not self.tree(table).update(ctx, key, value, self._next_lsn):
                raise ReproError(f"update of missing key {key}")

        return body

    def _delete_body(self, table: str, key: int):
        def body(ctx: OpContext):
            if not self.tree(table).delete(ctx, key, self._next_lsn):
                raise ReproError(f"delete of missing key {key}")

        return body

    def _select_body(self, table: str, key: int):
        return lambda ctx: self.tree(table).search(ctx, key)

    def _range_select_body(self, table: str, low: int, high: int):
        def body(ctx: OpContext):
            rows = self.tree(table).range_scan(ctx, low, high)
            return b"".join(value for _, value in rows)

        return body

    # -- DML ----------------------------------------------------------------------

    def _statement(self, start_us: float, body, read_only: bool = False) -> OpResult:
        """One statement on the analytic path (same body closures as
        :meth:`_statement_proc`, CPU charged via ``ResourcePool.serve``)."""
        ctx = self._start_statement(start_us)
        value = body(ctx)
        if read_only:
            self.pool.drain_touched()  # reads generate no redo
            return OpResult(ctx.now_us, ctx.io_reads, 0, value)
        done, redo_bytes = self._commit(ctx)
        return OpResult(done, ctx.io_reads, redo_bytes, value)

    def insert(self, start_us: float, table: str, key: int, value: bytes) -> OpResult:
        return self._statement(start_us, self._insert_body(table, key, value))

    def update(self, start_us: float, table: str, key: int, value: bytes) -> OpResult:
        return self._statement(start_us, self._update_body(table, key, value))

    def delete(self, start_us: float, table: str, key: int) -> OpResult:
        return self._statement(start_us, self._delete_body(table, key))

    def select(self, start_us: float, table: str, key: int) -> OpResult:
        return self._statement(
            start_us, self._select_body(table, key), read_only=True
        )

    def range_select(
        self, start_us: float, table: str, low: int, high: int
    ) -> OpResult:
        return self._statement(
            start_us, self._range_select_body(table, low, high), read_only=True
        )

    # -- engine-native DML -------------------------------------------------------------

    def _statement_proc(self, body, read_only: bool = False):
        """One statement as an engine process.

        Execute-CPU really queues on the core pool; the body (B+tree
        work) and redo collection then run in the same atomic step —
        the shared buffer pool's touched-page set must not observe
        another client's mutations between the two.  Buffer-pool misses
        inside the body charge storage reads analytically onto the
        context; the process sleeps that time off before committing.
        """
        engine = self._sim_engine
        yield from self.cpu.process(EXECUTE_CPU_US)
        ctx = OpContext(engine.now_us)
        value = body(ctx)
        if read_only:
            self.pool.drain_touched()  # reads generate no redo
            records: List[RedoRecord] = []
        else:
            records = self._collect_redo()
        if ctx.now_us > engine.now_us:
            yield engine.sleep_until(ctx.now_us)
        if not records:
            return OpResult(engine.now_us, ctx.io_reads, 0, value)
        yield from self.cpu.process(COMMIT_CPU_US)
        commit = yield from self.store.write_redo_proc(records)
        self.committed_statements += 1
        return OpResult(
            commit, ctx.io_reads, sum(r.size_bytes for r in records), value
        )

    def insert_proc(self, table: str, key: int, value: bytes):
        result = yield from self._statement_proc(
            self._insert_body(table, key, value)
        )
        return result

    def update_proc(self, table: str, key: int, value: bytes):
        result = yield from self._statement_proc(
            self._update_body(table, key, value)
        )
        return result

    def delete_proc(self, table: str, key: int):
        result = yield from self._statement_proc(
            self._delete_body(table, key)
        )
        return result

    def select_proc(self, table: str, key: int):
        result = yield from self._statement_proc(
            self._select_body(table, key), read_only=True
        )
        return result

    def range_select_proc(self, table: str, low: int, high: int):
        result = yield from self._statement_proc(
            self._range_select_body(table, low, high), read_only=True
        )
        return result

    # -- transactions -----------------------------------------------------------------

    def begin(self, start_us: float):
        """Open a multi-statement transaction (see
        :class:`repro.db.transaction.Transaction`)."""
        from repro.db.transaction import Transaction

        return Transaction(self, start_us)

    # -- bulk load -------------------------------------------------------------------

    def bulk_load(
        self, start_us: float, table: str, rows: List[Tuple[int, bytes]],
        redo_batch: int = 64,
    ) -> float:
        """Load many rows, batching redo commits (initial data load)."""
        now = start_us
        tree = self.tree(table)
        pending = 0
        for key, value in rows:
            ctx = OpContext(now)
            tree.insert(ctx, key, value, self._next_lsn)
            now = ctx.now_us
            pending += 1
            if pending >= redo_batch:
                now = self._commit(OpContext(now))[0]
                pending = 0
        if pending:
            now = self._commit(OpContext(now))[0]
        return now
