"""Read-only compute nodes.

An RO node serves queries from its own buffer pool and fetches missing
pages from shared storage based on its local parsing progress LSN\\ :sub:`i`
(§2.1).  Storage tracks the minimum LSN across RO nodes and may only
recycle redo below it — so a lagging RO node keeps redo alive at the
storage layer, building up log-cache pressure (the Figure 15 scenario).
"""

from __future__ import annotations


from repro.db.btree import descend
from repro.engine import ResourcePool
from repro.db.bufferpool import BufferPool, OpContext
from repro.db.rw_node import EXECUTE_CPU_US, OpResult, RWNode


class RONode:
    """One read-only replica of the compute layer."""

    def __init__(
        self,
        store,
        rw_node: RWNode,
        buffer_pool_pages: int = 256,
        lag_us: float = 0.0,
        cpu_cores: int = 8,
    ) -> None:
        self.store = store
        self.rw = rw_node
        self.pool = BufferPool(buffer_pool_pages, store)
        #: How far this node's redo parsing trails the RW node.  A large
        #: lag prevents the storage layer from recycling redo (Fig 15).
        self.lag_us = lag_us
        self.applied_lsn = 0
        #: Query execution contends for the node's cores; at high thread
        #: counts this queue, not the storage I/O, bounds throughput (the
        #: Figure 15 crossover beyond 128 threads).
        self.cpu = ResourcePool("ro-cpu", cpu_cores)
        self._sim_engine = None

    def bind_engine(self, engine, label: str = "0") -> None:
        """Attach the core pool to a shared event kernel.  At high thread
        counts the FIFO wait here — not storage I/O — bounds throughput:
        the Figure 15 CPU-bound crossover emerges from this queue."""
        self._sim_engine = engine
        self.cpu.bind_engine(engine)
        registry = getattr(self.store, "metrics", None)
        if registry is not None:
            self.cpu.bind_metrics(registry, node=f"ro-{label}")

    def parse_redo_up_to(self, lsn: int) -> None:
        """Advance the local parsing progress (LSN_i)."""
        self.applied_lsn = max(self.applied_lsn, lsn)
        # Pages cached before this point may be stale; a real RO node
        # applies redo to cached pages — we approximate by dropping the
        # cache so the next read refetches a consolidated page.
        # (Only needed when the workload mixes writes into cached pages.)

    def _lookup(self, ctx: OpContext, table: str, key: int):
        """The query body shared by both execution paths: descend the
        RW node's tree through this node's own buffer pool."""
        root = self.rw.tree(table).root_page_no
        leaf = descend(self.pool, ctx, root, key)
        return leaf.get(key)

    def select(self, start_us: float, table: str, key: int) -> OpResult:
        # Execution CPU goes through the node's core pool: it queues when
        # more threads are running than cores exist.
        started = self.cpu.serve(start_us, EXECUTE_CPU_US)
        ctx = OpContext(started)
        value = self._lookup(ctx, table, key)
        # Result assembly + row handling back on the CPU.
        ctx.now_us = self.cpu.serve(ctx.now_us, EXECUTE_CPU_US / 2)
        self.pool.drain_touched()
        return OpResult(ctx.now_us, ctx.io_reads, 0, value)

    def select_proc(self, table: str, key: int):
        """Engine process: the select's CPU slices really queue FIFO on
        the node's core pool, so core saturation under high concurrency
        is emergent rather than analytic."""
        engine = self._sim_engine
        yield from self.cpu.process(EXECUTE_CPU_US)
        ctx = OpContext(engine.now_us)
        value = self._lookup(ctx, table, key)
        self.pool.drain_touched()
        if ctx.now_us > engine.now_us:
            # Storage reads from buffer-pool misses were charged
            # analytically; live through them before the result slice.
            yield engine.sleep_until(ctx.now_us)
        # Result assembly + row handling back on the CPU.
        yield from self.cpu.process(EXECUTE_CPU_US / 2)
        return OpResult(engine.now_us, ctx.io_reads, 0, value)

    def invalidate_cache(self) -> None:
        """Drop every cached page (stale after heavy write traffic)."""
        self.pool = BufferPool(
            self.pool._pages.capacity_bytes // (16 * 1024), self.store
        )
