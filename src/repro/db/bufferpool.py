"""Compute-node buffer pool.

In the PolarDB architecture the compute node never writes pages back to
storage — storage nodes regenerate pages from redo (§2.1).  The buffer
pool therefore simply drops pages on eviction; a later miss re-fetches the
page from shared storage, which consolidates any pending redo on demand.

All timing flows through :class:`OpContext`: a page hit is free, a miss
charges the storage read (device queue + decompression CPU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.units import DB_PAGE_SIZE
from repro.db.page import Page, PageType
from repro.obs.metrics import MetricsRegistry
from repro.storage.cache import LRUCache


@dataclass
class OpContext:
    """Timing context threaded through one database operation."""

    now_us: float
    io_reads: int = 0
    io_read_us: float = 0.0

    def charge_cpu(self, cpu_us: float) -> None:
        self.now_us += cpu_us


class BufferPool:
    """Page cache in front of shared storage."""

    def __init__(self, capacity_pages: int, store, writeback: bool = False) -> None:
        """``store`` is anything with ``read_page(start_us, page_no)``
        returning an object with ``.data`` and ``.done_us`` — a
        :class:`~repro.storage.store.PolarStore`, a single node, or a
        baseline engine.

        ``writeback=True`` (InnoDB-style baselines) flushes dirty pages on
        eviction via ``store.write_page``; the default drops them, since
        PolarDB's storage layer regenerates pages from redo.
        """
        # Share the store's registry when it has one (PolarStore does) so
        # db-layer counters land in the same volume-wide snapshot;
        # baseline engines without one get a private registry.
        self.metrics: MetricsRegistry = getattr(store, "metrics", None) or (
            MetricsRegistry()
        )
        self._pages: LRUCache = LRUCache(
            capacity_pages * DB_PAGE_SIZE,
            sizer=lambda _: DB_PAGE_SIZE,
            metrics=self.metrics,
            metric_name="db.bufferpool",
        )
        self._miss_hist = self.metrics.histogram("db.bufferpool.miss_us")
        self._store = store
        self._writeback = writeback
        # Pages handed out since the last drain; the RW node collects their
        # accumulated byte modifications into redo records after each op.
        self._touched: dict = {}

    def get_page(self, ctx: OpContext, page_no: int) -> Page:
        page = self._pages.get(page_no)
        if page is not None:
            self._touched[page_no] = page
            return page
        span = self.metrics.tracer.begin(
            "db.page_fetch", ctx.now_us, layer="db"
        )
        result = self._store.read_page(ctx.now_us, page_no)
        if span is not None:
            self.metrics.tracer.end(span, result.done_us)
        self._miss_hist.record(result.done_us - ctx.now_us)
        ctx.io_reads += 1
        ctx.io_read_us += result.done_us - ctx.now_us
        ctx.now_us = result.done_us
        page = Page.parse(result.data)
        self._evict(ctx, self._pages.put(page_no, page))
        self._touched[page_no] = page
        return page

    def _evict(self, ctx: Optional[OpContext], evicted) -> None:
        if not self._writeback:
            return
        for page_no, page in evicted:
            if page.dirty:
                # Dirty write-back on the miss path: the page must be
                # compressed and persisted before its frame is reused.
                done = self._store.write_page(
                    ctx.now_us if ctx else 0.0, page_no, page.to_bytes()
                )
                if ctx is not None:
                    ctx.now_us = max(ctx.now_us, getattr(done, "commit_us", 0.0))
                page.dirty = False

    def new_page(
        self, page_no: int, page_type: PageType, ctx: Optional[OpContext] = None
    ) -> Page:
        """Create a fresh page directly in the pool (no storage round trip:
        the page materializes at storage via its redo)."""
        page = Page.new(page_no, page_type)
        self._evict(ctx, self._pages.put(page_no, page))
        self._touched[page_no] = page
        return page

    def drain_touched(self) -> dict:
        """Pages touched since the last drain, keyed by page_no."""
        touched = self._touched
        self._touched = {}
        return touched

    def pin(self, page_no: int) -> None:
        """Exempt a page from eviction (active transactions pin their
        working set so uncommitted changes cannot be dropped)."""
        self._pages.pin(page_no)

    def unpin(self, page_no: int) -> None:
        self._pages.unpin(page_no)

    def lookup(self, page_no: int) -> Optional[Page]:
        return self._pages.peek(page_no)

    def drop(self, page_no: int) -> None:
        self._pages.remove(page_no)

    @property
    def hit_rate(self) -> float:
        return self._pages.hit_rate

    @property
    def cached_pages(self) -> int:
        return len(self._pages)
