"""A miniature cloud-native database engine.

Implements just enough of a PolarDB-style RDBMS to drive realistic I/O at
the storage layer: 16 KB slotted pages, a B+tree, an LRU buffer pool,
physiological redo generation, a read-write (RW) compute node that commits
transactions by persisting redo to shared storage, and read-only (RO)
nodes that track the RW node's LSN (§2.1).

The engine's page mutations produce byte-exact redo records, so storage-
side page consolidation (applying redo to page images) reconstructs pages
the compute layer actually parses — data flow is real end to end.
"""

from repro.db.page import Page, PageType
from repro.db.btree import BPlusTree
from repro.db.bufferpool import BufferPool
from repro.db.rw_node import RWNode
from repro.db.ro_node import RONode
from repro.db.database import PolarDB

__all__ = [
    "Page",
    "PageType",
    "BPlusTree",
    "BufferPool",
    "RWNode",
    "RONode",
    "PolarDB",
]
