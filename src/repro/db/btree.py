"""B+tree over 16 KB slotted pages.

Leaves hold user records; internal pages hold (separator key -> child
page_no) routing entries, with the invariant that an internal page's first
slot covers everything below its second slot's key.  Splits move the upper
half of a page into a fresh page (a full-page reorganization on both
sides, generating full-page redo like a real engine's page reorg).

Deletes are tombstones — B+trees keep reserved space rather than merging
eagerly, which is exactly the fragmentation §2.2.1 attributes to them.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import CorruptionError
from repro.db.bufferpool import BufferPool, OpContext
from repro.db.page import Page, PageType

_CHILD = struct.Struct("<Q")


def descend(pool: BufferPool, ctx: OpContext, root_page_no: int, key: int) -> Page:
    """Walk from ``root_page_no`` to the leaf covering ``key``.

    Shared by the RW node's trees and RO nodes (which only know the root
    page number from the catalog).
    """
    page = pool.get_page(ctx, root_page_no)
    while page.page_type is PageType.INTERNAL:
        page = pool.get_page(ctx, BPlusTree._child_for(page, key))
    return page


class BPlusTree:
    """A B+tree addressed by integer keys."""

    def __init__(self, pool: BufferPool, allocate_page_no) -> None:
        """``allocate_page_no`` is a zero-argument callable handing out
        fresh page numbers (owned by the database instance)."""
        self._pool = pool
        self._alloc = allocate_page_no
        root = self._pool.new_page(self._alloc(), PageType.LEAF)
        self.root_page_no = root.page_no
        self.height = 1

    # -- lookup ------------------------------------------------------------

    def search(self, ctx: OpContext, key: int) -> Optional[bytes]:
        leaf = self._descend(ctx, key)
        return leaf.get(key)

    def _descend(self, ctx: OpContext, key: int) -> Page:
        return descend(self._pool, ctx, self.root_page_no, key)

    @staticmethod
    def _child_for(page: Page, key: int) -> int:
        index, found = page._bisect(key)
        if not found:
            if index == 0:
                index = 1  # key below the leftmost separator
            slot_index = index - 1
        else:
            slot_index = index
        child_key, child_value = page._record_at(slot_index)
        return _CHILD.unpack(child_value)[0]

    def range_scan(
        self, ctx: OpContext, low: int, high: int
    ) -> List[Tuple[int, bytes]]:
        """All records with low <= key <= high (inclusive)."""
        out: List[Tuple[int, bytes]] = []
        self._scan_page(ctx, self.root_page_no, low, high, out)
        return out

    def _scan_page(
        self, ctx: OpContext, page_no: int, low: int, high: int, out: list
    ) -> None:
        page = self._pool.get_page(ctx, page_no)
        if page.page_type is PageType.LEAF:
            out.extend(
                (key, value) for key, value in page.items() if low <= key <= high
            )
            return
        entries = list(page.items())
        for i, (sep, child_value) in enumerate(entries):
            next_sep = entries[i + 1][0] if i + 1 < len(entries) else None
            # Child i covers [sep, next_sep); include it if it overlaps.
            if next_sep is not None and next_sep <= low:
                continue
            if sep > high:
                break
            self._scan_page(
                ctx, _CHILD.unpack(child_value)[0], low, high, out
            )

    # -- mutation -------------------------------------------------------------

    def insert(self, ctx: OpContext, key: int, value: bytes, lsn: int) -> None:
        split = self._insert_into(ctx, self.root_page_no, key, value, lsn)
        if split is not None:
            self._grow_root(split, lsn)

    def update(self, ctx: OpContext, key: int, value: bytes, lsn: int) -> bool:
        leaf = self._descend(ctx, key)
        if leaf.update(key, value, lsn):
            return True
        if leaf.get(key) is None:
            return False
        # Value grew past the page's free space: delete + reinsert.
        leaf.delete(key, lsn)
        self.insert(ctx, key, value, lsn)
        return True

    def delete(self, ctx: OpContext, key: int, lsn: int) -> bool:
        leaf = self._descend(ctx, key)
        return leaf.delete(key, lsn)

    def _insert_into(
        self, ctx: OpContext, page_no: int, key: int, value: bytes, lsn: int
    ) -> Optional[Tuple[int, int]]:
        """Recursive insert; returns (separator, new page_no) on split."""
        page = self._pool.get_page(ctx, page_no)
        if page.page_type is PageType.LEAF:
            if page.insert(key, value, lsn):
                return None
            sep, new_page_no = self._split(ctx, page, lsn)
            target = page if key < sep else self._pool.get_page(ctx, new_page_no)
            if not target.insert(key, value, lsn):
                raise CorruptionError("record does not fit a fresh page half")
            return sep, new_page_no

        child_no = self._child_for(page, key)
        child_split = self._insert_into(ctx, child_no, key, value, lsn)
        if child_split is None:
            return None
        sep, new_child = child_split
        routing = _CHILD.pack(new_child)
        if page.insert(sep, routing, lsn):
            return None
        parent_sep, new_page_no = self._split(ctx, page, lsn)
        target = page if sep < parent_sep else self._pool.get_page(ctx, new_page_no)
        if not target.insert(sep, routing, lsn):
            raise CorruptionError("routing entry does not fit after split")
        return parent_sep, new_page_no

    def _split(self, ctx: OpContext, page: Page, lsn: int) -> Tuple[int, int]:
        """Move the upper half of ``page`` to a new sibling."""
        records = sorted(page.items())
        mid = len(records) // 2
        lower, upper = records[:mid], records[mid:]
        sibling = self._pool.new_page(self._alloc(), page.page_type, ctx)
        page.rebuild(lower, lsn)
        sibling.rebuild(upper, lsn)
        return upper[0][0], sibling.page_no

    def _grow_root(self, split: Tuple[int, int], lsn: int) -> None:
        sep, new_page_no = split
        old_root_no = self.root_page_no
        old_root = self._pool.lookup(old_root_no)
        min_key = old_root.min_key() if old_root and old_root.n_slots else 0
        new_root = self._pool.new_page(self._alloc(), PageType.INTERNAL)
        new_root.insert(min_key, _CHILD.pack(old_root_no), lsn)
        new_root.insert(sep, _CHILD.pack(new_page_no), lsn)
        self.root_page_no = new_root.page_no
        self.height += 1

    # -- introspection --------------------------------------------------------------

    def leaf_page_nos(self, ctx: OpContext) -> Iterator[int]:
        yield from self._leaves_under(ctx, self.root_page_no)

    def _leaves_under(self, ctx: OpContext, page_no: int) -> Iterator[int]:
        page = self._pool.get_page(ctx, page_no)
        if page.page_type is PageType.LEAF:
            yield page_no
            return
        for _, child_value in page.items():
            yield from self._leaves_under(ctx, _CHILD.unpack(child_value)[0])
