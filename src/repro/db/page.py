"""16 KB slotted database page.

Layout (little-endian)::

    header (26 B):
        u16 magic | u8 page_type | u64 page_no | u64 page_lsn
        u16 n_slots | u16 free_offset | u8 reserved[3]
    heap:  records grow upward from the header
    slots: the slot directory grows downward from the page end;
           each slot is u16 offset | u16 record_len (offset 0 = deleted)

    record: u64 key | u16 value_len | value bytes

Every mutation goes through ``_write`` so the page accumulates the exact
byte ranges it changed; the RW node turns those into redo records.  That
makes storage-side consolidation byte-faithful: replaying the redo against
the old image yields a page this parser accepts.
"""

from __future__ import annotations

import enum
import struct
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import CorruptionError
from repro.common.units import DB_PAGE_SIZE

_MAGIC = 0x50D8
_HEADER = struct.Struct("<HBQQHH3x")
HEADER_SIZE = _HEADER.size
_SLOT = struct.Struct("<HH")
SLOT_SIZE = _SLOT.size
_RECORD_HEADER = struct.Struct("<QH")


class PageType(enum.IntEnum):
    LEAF = 0
    INTERNAL = 1


class Page:
    """A slotted page over a 16 KB bytearray."""

    def __init__(self, buf: Optional[bytearray] = None) -> None:
        if buf is None:
            raise ValueError("use Page.new() or Page.parse()")
        self.buf = buf
        self._mods: List[Tuple[int, bytes]] = []
        self._undo: List[Tuple[int, bytes]] = []
        #: Set on any mutation; write-back engines (InnoDB baseline) clear
        #: it after flushing.  The PolarDB path ignores it (storage rebuilds
        #: pages from redo).
        self.dirty = False

    # -- construction -----------------------------------------------------

    @classmethod
    def new(cls, page_no: int, page_type: PageType) -> "Page":
        buf = bytearray(DB_PAGE_SIZE)
        _HEADER.pack_into(
            buf, 0, _MAGIC, int(page_type), page_no, 0, 0, HEADER_SIZE
        )
        page = cls(buf)
        page._mods.append((0, bytes(buf[:HEADER_SIZE])))
        return page

    @classmethod
    def parse(cls, raw: bytes) -> "Page":
        if len(raw) != DB_PAGE_SIZE:
            raise CorruptionError(f"page must be 16 KiB, got {len(raw)}")
        page = cls(bytearray(raw))
        if page.magic != _MAGIC:
            raise CorruptionError(f"bad page magic 0x{page.magic:04x}")
        return page

    # -- header accessors ---------------------------------------------------

    @property
    def magic(self) -> int:
        return _HEADER.unpack_from(self.buf)[0]

    @property
    def page_type(self) -> PageType:
        return PageType(_HEADER.unpack_from(self.buf)[1])

    @property
    def page_no(self) -> int:
        return _HEADER.unpack_from(self.buf)[2]

    @property
    def page_lsn(self) -> int:
        return _HEADER.unpack_from(self.buf)[3]

    @property
    def n_slots(self) -> int:
        return _HEADER.unpack_from(self.buf)[4]

    @property
    def free_offset(self) -> int:
        return _HEADER.unpack_from(self.buf)[5]

    def _write_header(
        self, page_lsn: int, n_slots: int, free_offset: int
    ) -> None:
        packed = _HEADER.pack(
            _MAGIC, int(self.page_type), self.page_no, page_lsn, n_slots,
            free_offset,
        )
        self._write(0, packed)

    # -- mutation plumbing ------------------------------------------------------

    def _write(self, offset: int, data: bytes) -> None:
        # Before-image first (undo), then the mutation (redo).
        self._undo.append(
            (offset, bytes(self.buf[offset : offset + len(data)]))
        )
        self.buf[offset : offset + len(data)] = data
        self._mods.append((offset, bytes(data)))
        self.dirty = True

    def drain_mods(self) -> List[Tuple[int, bytes]]:
        """Byte ranges changed since the last drain (for redo generation)."""
        mods = self._mods
        self._mods = []
        self._undo = []
        return mods

    def rollback_mods(self) -> int:
        """Undo every change since the last drain; returns entries undone."""
        count = len(self._undo)
        for offset, before in reversed(self._undo):
            self.buf[offset : offset + len(before)] = before
        self._undo = []
        self._mods = []
        return count

    # -- slot directory ------------------------------------------------------------

    def _slot_pos(self, index: int) -> int:
        return DB_PAGE_SIZE - (index + 1) * SLOT_SIZE

    def _read_slot(self, index: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.buf, self._slot_pos(index))

    def _slot_key(self, index: int) -> int:
        offset, _ = self._read_slot(index)
        return _RECORD_HEADER.unpack_from(self.buf, offset)[0]

    def _record_at(self, index: int) -> Tuple[int, bytes]:
        offset, length = self._read_slot(index)
        key, value_len = _RECORD_HEADER.unpack_from(self.buf, offset)
        start = offset + _RECORD_HEADER.size
        return key, bytes(self.buf[start : start + value_len])

    # -- space accounting -------------------------------------------------------------

    @property
    def slots_start(self) -> int:
        return DB_PAGE_SIZE - self.n_slots * SLOT_SIZE

    def free_bytes(self) -> int:
        return self.slots_start - self.free_offset

    def fits(self, value_len: int) -> bool:
        need = _RECORD_HEADER.size + value_len + SLOT_SIZE
        return self.free_bytes() >= need

    def fill_fraction(self) -> float:
        return 1.0 - self.free_bytes() / DB_PAGE_SIZE

    # -- search -------------------------------------------------------------------------

    def _bisect(self, key: int) -> Tuple[int, bool]:
        """(index, found): index of key or insertion point among slots."""
        lo, hi = 0, self.n_slots
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = self._slot_key(mid)
            if mid_key == key:
                return mid, True
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, False

    def get(self, key: int) -> Optional[bytes]:
        index, found = self._bisect(key)
        if not found:
            return None
        if self._read_slot(index)[1] == 0:
            return None  # tombstone
        return self._record_at(index)[1]

    def keys(self) -> List[int]:
        return [
            self._slot_key(i)
            for i in range(self.n_slots)
            if self._read_slot(i)[1] != 0
        ]

    def items(self) -> Iterator[Tuple[int, bytes]]:
        for i in range(self.n_slots):
            if self._read_slot(i)[1] != 0:
                yield self._record_at(i)

    def min_key(self) -> int:
        for i in range(self.n_slots):
            if self._read_slot(i)[1] != 0:
                return self._slot_key(i)
        raise CorruptionError("empty page has no min key")

    # -- DML ---------------------------------------------------------------------------------

    def insert(self, key: int, value: bytes, lsn: int) -> bool:
        """Insert a record; returns False when the page is full."""
        if not self.fits(len(value)):
            return False
        index, found = self._bisect(key)
        if found and self._read_slot(index)[1] != 0:
            raise CorruptionError(f"duplicate key {key}")
        record = _RECORD_HEADER.pack(key, len(value)) + value
        record_offset = self.free_offset
        self._write(record_offset, record)
        if found:
            # Revive the tombstone slot in place.
            self._write(
                self._slot_pos(index), _SLOT.pack(record_offset, len(record))
            )
            self._write_header(lsn, self.n_slots, record_offset + len(record))
            return True
        # Shift slots [index, n) one position down (toward lower addresses).
        n = self.n_slots
        if index < n:
            start = self._slot_pos(n - 1)
            end = self._slot_pos(index) + SLOT_SIZE
            shifted = bytes(self.buf[start:end])
            self._write(start - SLOT_SIZE, shifted)
        self._write(self._slot_pos(index), _SLOT.pack(record_offset, len(record)))
        self._write_header(lsn, n + 1, record_offset + len(record))
        return True

    def update(self, key: int, value: bytes, lsn: int) -> bool:
        """Update a record; returns False if absent or page full."""
        index, found = self._bisect(key)
        if not found or self._read_slot(index)[1] == 0:
            return False
        offset, length = self._read_slot(index)
        old_value_len = length - _RECORD_HEADER.size
        if len(value) <= old_value_len:
            # In-place: overwrite the value and shrink the slot length.
            self._write(offset + _RECORD_HEADER.size, value)
            self._write(offset + 8, struct.pack("<H", len(value)))
            self._write(
                self._slot_pos(index),
                _SLOT.pack(offset, _RECORD_HEADER.size + len(value)),
            )
            self._write_header(lsn, self.n_slots, self.free_offset)
            return True
        if self.free_bytes() < _RECORD_HEADER.size + len(value):
            return False
        record = _RECORD_HEADER.pack(key, len(value)) + value
        record_offset = self.free_offset
        self._write(record_offset, record)
        self._write(self._slot_pos(index), _SLOT.pack(record_offset, len(record)))
        self._write_header(lsn, self.n_slots, record_offset + len(record))
        return True

    def delete(self, key: int, lsn: int) -> bool:
        index, found = self._bisect(key)
        if not found or self._read_slot(index)[1] == 0:
            return False
        offset, _ = self._read_slot(index)
        # Tombstone: keep the offset (the key stays searchable), zero the
        # length.
        self._write(self._slot_pos(index), _SLOT.pack(offset, 0))
        self._write_header(lsn, self.n_slots, self.free_offset)
        return True

    # -- bulk (splits) --------------------------------------------------------------------------

    def rebuild(self, records: List[Tuple[int, bytes]], lsn: int) -> None:
        """Replace the page's contents with ``records`` (sorted by key)."""
        fresh = bytearray(DB_PAGE_SIZE)
        _HEADER.pack_into(
            fresh, 0, _MAGIC, int(self.page_type), self.page_no, lsn,
            0, HEADER_SIZE,
        )
        offset = HEADER_SIZE
        for i, (key, value) in enumerate(records):
            record = _RECORD_HEADER.pack(key, len(value)) + value
            fresh[offset : offset + len(record)] = record
            _SLOT.pack_into(fresh, DB_PAGE_SIZE - (i + 1) * SLOT_SIZE, offset,
                            len(record))
            offset += len(record)
        _HEADER.pack_into(
            fresh, 0, _MAGIC, int(self.page_type), self.page_no, lsn,
            len(records), offset,
        )
        # One whole-page modification (full-page redo, as real engines do
        # for reorganizations).
        self._write(0, bytes(fresh))

    def to_bytes(self) -> bytes:
        return bytes(self.buf)
