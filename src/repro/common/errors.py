"""Exception hierarchy for the PolarStore reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AllocationError(ReproError):
    """Space-allocator invariant violated (double free, bad range, ...)."""


class OutOfSpaceError(AllocationError):
    """A device, chunk, or allocator has no free space left."""


class DeviceError(ReproError):
    """A simulated storage device failed an operation."""


class DeviceUnavailableError(DeviceError):
    """The whole device is down (chaos whole-device failure): every I/O
    fails until it recovers, as opposed to one bad block."""


class ChecksumError(ReproError):
    """Stored data failed checksum verification."""


class PageCorruptionError(ChecksumError):
    """One replica's copy of a page is unreadable or fails verification.

    Carries enough forensic context (which node, which page, which LBA
    range, and the detection symptom) for the repair path to rewrite the
    bad copy and for the chaos ledger to attribute the fault kind.
    """

    def __init__(
        self,
        message: str,
        *,
        node: str = "",
        page_no: int = -1,
        lba: int = -1,
        n_blocks: int = 0,
        symptom: str = "checksum_mismatch",
    ) -> None:
        super().__init__(message)
        self.node = node
        self.page_no = page_no
        self.lba = lba
        self.n_blocks = n_blocks
        self.symptom = symptom


class CorruptionError(ReproError):
    """A codec or index detected malformed input."""


class WALError(ReproError):
    """Write-ahead log append/replay failure."""


class TornWALError(WALError):
    """A WAL record was cut short mid-append (crash during the write).

    Replay ignores a torn record at the *tail* of the log — the append
    was never acknowledged — but treats the same damage anywhere else as
    corruption of a committed record and raises :class:`WALError`.
    """


class RaftError(ReproError):
    """Replication-layer failure (no quorum, stale term, ...)."""


class SchedulingError(ReproError):
    """Cluster scheduler could not satisfy a placement request."""
