"""Exception hierarchy for the PolarStore reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AllocationError(ReproError):
    """Space-allocator invariant violated (double free, bad range, ...)."""


class OutOfSpaceError(AllocationError):
    """A device, chunk, or allocator has no free space left."""


class DeviceError(ReproError):
    """A simulated storage device failed an operation."""


class ChecksumError(ReproError):
    """Stored data failed checksum verification."""


class CorruptionError(ReproError):
    """A codec or index detected malformed input."""


class WALError(ReproError):
    """Write-ahead log append/replay failure."""


class RaftError(ReproError):
    """Replication-layer failure (no quorum, stale term, ...)."""


class SchedulingError(ReproError):
    """Cluster scheduler could not satisfy a placement request."""
