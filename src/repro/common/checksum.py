"""Checksums used by the WAL, page format, and device model."""

from __future__ import annotations

import zlib


def crc32(data: bytes, seed: int = 0) -> int:
    """CRC-32 of ``data`` (zlib polynomial), masked to 32 bits."""
    return zlib.crc32(data, seed) & 0xFFFFFFFF


def verify_crc32(data: bytes, expected: int, seed: int = 0) -> bool:
    """True when ``data`` matches the expected CRC-32."""
    return crc32(data, seed) == expected
