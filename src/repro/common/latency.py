"""Latency distributions and summary statistics.

Device and codec latencies in the simulator are drawn from small parametric
distributions seeded per component, so runs are deterministic and tail
behaviour (P95/P99) is meaningful.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence


@dataclass
class LatencyModel:
    """A base latency plus multiplicative lognormal jitter.

    ``sample()`` returns ``base_us * jitter`` where ``jitter`` is lognormal
    with median 1 and shape ``sigma``.  ``sigma=0`` makes the model
    deterministic, which most unit tests rely on.
    """

    base_us: float
    sigma: float = 0.0
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.base_us < 0:
            raise ValueError(f"negative base latency {self.base_us}")
        if self.sigma < 0:
            raise ValueError(f"negative sigma {self.sigma}")
        self._rng = random.Random(self.seed)

    def sample(self) -> float:
        if self.sigma == 0.0:
            return self.base_us
        return self.base_us * math.exp(self._rng.gauss(0.0, self.sigma))

    def scaled(self, factor: float) -> "LatencyModel":
        """A new model with the base scaled by ``factor`` (same jitter)."""
        return LatencyModel(self.base_us * factor, self.sigma, self.seed)


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; ``pct`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} out of range")
    ordered = sorted(samples)
    if pct == 0.0:
        return ordered[0]
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass
class LatencyStats:
    """Online collector for latency samples with summary accessors."""

    samples: List[float] = field(default_factory=list)

    def record(self, value_us: float) -> None:
        self.samples.append(value_us)

    def extend(self, values: Iterable[float]) -> None:
        self.samples.extend(values)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean_us(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def pct(self, percentile_value: float) -> float:
        return percentile(self.samples, percentile_value)

    @property
    def p50_us(self) -> float:
        return self.pct(50.0)

    @property
    def p95_us(self) -> float:
        return self.pct(95.0)

    @property
    def p99_us(self) -> float:
        return self.pct(99.0)

    @property
    def max_us(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def fraction_above(self, threshold_us: float) -> float:
        """Fraction of samples strictly above ``threshold_us`` (Fig 8)."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s > threshold_us) / len(self.samples)

    def merged(self, other: "LatencyStats") -> "LatencyStats":
        out = LatencyStats()
        out.samples = self.samples + other.samples
        return out
