"""Simulated time.

The reproduction band for this paper notes that pure Python is too slow for
faithful wall-clock throughput evaluation, so the whole stack runs against a
logical clock measured in microseconds.  Components *charge* latency to the
clock instead of sleeping; benchmarks then report simulated latency and
simulated operations/second.

Two primitives cover everything the simulator needs:

``SimClock``
    A monotonically advancing microsecond counter shared by one simulation.

``Resource``
    A single-server queue attached to a clock.  ``serve()`` models a request
    that must wait for the resource to drain before its own service time
    starts (device channels, CPU cores, NIC links all use this).
"""

from __future__ import annotations

from typing import List


class SimClock:
    """A logical microsecond clock for one simulation universe."""

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_us

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_us / 1e6

    def advance(self, delta_us: float) -> float:
        """Move time forward by ``delta_us`` and return the new time."""
        if delta_us < 0:
            raise ValueError(f"cannot advance clock by negative {delta_us}")
        self._now_us += delta_us
        return self._now_us

    def advance_to(self, when_us: float) -> float:
        """Move time forward to ``when_us`` (no-op if already later)."""
        if when_us > self._now_us:
            self._now_us = when_us
        return self._now_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now_us={self._now_us:.3f})"


class Resource:
    """A single-server FIFO queue used to model contention.

    ``serve(start_us, service_us)`` returns the completion time of a request
    that arrives at ``start_us`` and needs ``service_us`` of exclusive
    service.  Requests queue behind whatever the resource is already doing,
    which is how queue-depth effects and device busy time emerge in the
    simulation.
    """

    def __init__(self, name: str = "resource") -> None:
        self.name = name
        self._busy_until_us = 0.0
        self.total_busy_us = 0.0
        self.completed = 0

    @property
    def busy_until_us(self) -> float:
        return self._busy_until_us

    def serve(self, start_us: float, service_us: float) -> float:
        """Queue a request; return its completion time in microseconds."""
        if service_us < 0:
            raise ValueError(f"negative service time {service_us}")
        begin = max(start_us, self._busy_until_us)
        end = begin + service_us
        self._busy_until_us = end
        self.total_busy_us += service_us
        self.completed += 1
        return end

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this resource spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.total_busy_us / elapsed_us)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Resource({self.name!r}, busy_until={self._busy_until_us:.1f})"


class ResourcePool:
    """``k`` identical servers; requests go to the earliest-free one.

    Models multi-channel NAND, multi-core FTL processors, and replica fan-out
    without a full event queue.
    """

    def __init__(self, name: str, servers: int) -> None:
        if servers <= 0:
            raise ValueError(f"need at least one server, got {servers}")
        self.name = name
        self._servers: List[Resource] = [
            Resource(f"{name}[{i}]") for i in range(servers)
        ]

    def serve(self, start_us: float, service_us: float) -> float:
        server = min(self._servers, key=lambda s: s.busy_until_us)
        return server.serve(start_us, service_us)

    @property
    def servers(self) -> List[Resource]:
        return list(self._servers)
