"""Foundational utilities shared by every PolarStore subsystem.

This package deliberately has no dependencies on the rest of ``repro`` so
that every other subpackage can import it freely.
"""

from repro.common.clock import SimClock
from repro.common.errors import (
    AllocationError,
    ChecksumError,
    CorruptionError,
    DeviceError,
    OutOfSpaceError,
    ReproError,
)
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    align_down,
    align_up,
    ceil_div,
    is_aligned,
)

__all__ = [
    "SimClock",
    "ReproError",
    "AllocationError",
    "OutOfSpaceError",
    "DeviceError",
    "ChecksumError",
    "CorruptionError",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "align_up",
    "align_down",
    "is_aligned",
    "ceil_div",
]
