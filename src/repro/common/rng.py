"""Deterministic RNG helpers.

Every stochastic component takes an explicit seed; these helpers derive
stable per-component seeds so that adding a component never perturbs the
random streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a 63-bit seed from a root seed and a label path."""
    digest = hashlib.blake2b(
        repr((root_seed,) + labels).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


def make_rng(root_seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` seeded deterministically from a label path."""
    return random.Random(derive_seed(root_seed, *labels))
