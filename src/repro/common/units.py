"""Size units and alignment arithmetic.

PolarStore works with a small set of fixed granularities that recur across
the whole stack:

* 16 KiB — the database page size (InnoDB-style).
* 4 KiB  — the LBA / software-compression output granularity.
* 128 KiB — the global allocator extent.
* byte granularity — the physical placement unit inside PolarCSD.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

#: Database page size used by the compute layer (bytes).
DB_PAGE_SIZE = 16 * KiB
#: Logical block size exposed by PolarCSD / the software compression output.
LBA_SIZE = 4 * KiB
#: Extent size handed out by the global allocator.
EXTENT_SIZE = 128 * KiB


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value // alignment * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when ``value`` is a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def human_bytes(size: float) -> str:
    """Render a byte count for log/bench output, e.g. ``1.50 GiB``."""
    if size < 0:
        return f"-{human_bytes(-size)}"
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if size >= unit:
            return f"{size / unit:.2f} {name}"
    return f"{size:.0f} B"
