"""Observed scenario runners: one workload, full observability plane.

``python -m repro events`` and ``python -m repro dash`` both need the
same thing: a seeded scenario running with the flight recorder active,
an :class:`~repro.obs.slo.SLOEvaluator` ticking on simulated time, and
a hook that fires periodically so a live view can redraw.  This module
packages the three canonical scenarios (sysbench OLTP, the chaos
schedule, the sharded-cluster rebalance) behind one entry point,
:func:`run_observed`, and returns everything a renderer needs — the
registries, the evaluator (with its per-spec history for sparklines),
the recorder, and the final verdict.

Determinism contract: given ``(name, seed, quick)`` the run is byte-
deterministic — the events dump and the HTML report must not change
across double runs (CI diffs them).  The tick daemon only *reads*
registries, so it never perturbs workload timing decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.events import FlightRecorder, recording
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnRateSLO,
    ErrorBudgetSLO,
    LatencySLO,
    SLOEvaluator,
    SLOReport,
    ThresholdSLO,
)

#: Default seeds per scenario (match the CLI/perf-harness conventions).
DEFAULT_SEEDS = {"sysbench": 7, "chaos": 42, "cluster": 0, "raft": 11}

#: ``on_tick(run, now_us)`` — fired every evaluator interval.
TickFn = Callable[["ObservedRun", float], None]


@dataclass
class ObservedRun:
    """Everything a renderer needs, live (via ``on_tick``) or post-hoc."""

    name: str
    seed: int
    quick: bool
    recorder: FlightRecorder
    evaluator: SLOEvaluator
    registries: List[MetricsRegistry] = field(default_factory=list)
    now_us: float = 0.0
    passed: bool = True
    detail: Dict[str, object] = field(default_factory=dict)
    #: The chaos and raft scenarios keep their full report here
    #: (rendered verdict with schedule counters).
    chaos_report: Optional[object] = None

    @property
    def slo_report(self) -> SLOReport:
        return SLOReport(statuses=list(self.evaluator.last.values()))


def _tick(run: ObservedRun, on_tick: Optional[TickFn], now_us: float) -> None:
    run.now_us = now_us
    run.evaluator.evaluate(now_us)
    if on_tick is not None:
        on_tick(run, now_us)


# ---------------------------------------------------------------------------
# sysbench: 8-client OLTP read_write on one replicated volume
# ---------------------------------------------------------------------------


def _run_sysbench(
    run: ObservedRun, on_tick: Optional[TickFn], interval_us: float
) -> None:
    from repro.api import ReproConfig, build_db
    from repro.engine import Engine
    from repro.workloads.sysbench import prepare_table, run_sysbench

    rows = 64 if run.quick else 256
    txns = 32 if run.quick else 128
    db = build_db(ReproConfig())
    run.registries.append(db.metrics)
    ev = run.evaluator
    ev.attach(db.metrics)
    ev.add(LatencySLO(
        "sysbench.page_write_p99", "storage.page_write_us", 99, 20_000.0
    ))
    ev.add(LatencySLO(
        "sysbench.page_read_p99", "storage.page_read_us", 99, 20_000.0
    ))
    ev.add(BurnRateSLO(
        "sysbench.commit_burn", "storage.commits_per_window",
        allowed_per_window=2_000.0, windows=5, max_burn=1.0,
    ))
    ev.add(ErrorBudgetSLO(
        "sysbench.unrepairable", "chaos.unrepairable", budget=0.0
    ))
    ev.add(ThresholdSLO(
        "sysbench.compression_ratio",
        lambda: float(db.compression_ratio()),
        floor=1.0,
    ))

    loaded_us = prepare_table(db, rows=rows, seed=run.seed)
    engine = Engine(start_us=loaded_us)

    def watch():
        while True:
            yield engine.timeout(interval_us)
            _tick(run, on_tick, engine.now_us)

    watcher = engine.spawn(watch(), name="obs-tick")
    result = run_sysbench(
        db,
        "read_write",
        duration_s=4.0,
        threads=8,
        key_range=rows,
        start_us=loaded_us,
        max_transactions=txns,
        seed=run.seed,
        engine=engine,
    )
    watcher.cancel()
    end_us = db.checkpoint(loaded_us + result.elapsed_s * 1e6)
    scrubbed_us = db.store.scrub(end_us)
    _tick(run, on_tick, scrubbed_us)
    run.passed = run.slo_report.passed
    run.detail = {
        "rows": rows,
        "transactions": result.transactions,
        "tps": round(result.tps, 1),
        "p95_us": round(result.latency.p95_us, 1),
    }


# ---------------------------------------------------------------------------
# chaos: the seeded fault-injection schedule
# ---------------------------------------------------------------------------


def _run_chaos(
    run: ObservedRun, on_tick: Optional[TickFn], interval_us: float
) -> None:
    from repro.chaos.harness import run_chaos

    ops = 120 if run.quick else 400
    min_faults = 2 if run.quick else 40
    # The chaos loop is synchronous over ops (it owns its own clock), so
    # the tick hook rides ``on_progress`` instead of an engine daemon.
    every = max(1, ops // 32)

    def progress(op: int, now_us: float) -> None:
        if op % every == 0:
            _tick(run, on_tick, now_us)

    report = run_chaos(
        seed=run.seed,
        ops=ops,
        pages=32 if run.quick else 64,
        scrub_every=40 if run.quick else 150,
        min_data_faults=min_faults,
        on_progress=progress,
        evaluator=run.evaluator,
    )
    run.registries.append(report.metrics)
    run.now_us = max(
        run.now_us, max((s.t_us for s in run.evaluator.last.values()),
                        default=run.now_us)
    )
    run.passed = report.passed
    run.chaos_report = report
    run.detail = {
        "ops": ops,
        "injected_data_faults": report.injected_data_faults,
        "repaired": sum(report.repaired.values()),
    }


# ---------------------------------------------------------------------------
# cluster: skewed ingest + compression-aware rebalance (Fig 10/11 shape)
# ---------------------------------------------------------------------------


def _run_cluster(
    run: ObservedRun, on_tick: Optional[TickFn], interval_us: float
) -> None:
    from repro.bench.cluster_fig import build_skewed_runtime
    from repro.cluster.scheduler import CompressionAwareScheduler

    shards = 2 if run.quick else 3
    chunks = 4 if run.quick else 8
    runtime, expected = build_skewed_runtime(
        shards=shards, chunks=chunks, seed=run.seed
    )
    run.registries.append(runtime.metrics)
    for shard in runtime.shards:
        run.registries.append(shard.store.metrics)
    ev = run.evaluator
    for registry in run.registries:
        ev.attach(registry)
    # ``verified`` is filled after the rebalance; until then the spec is
    # vacuously healthy (the engine must not be re-entered mid-run).
    verified: Dict[str, int] = {}
    ev.add(LatencySLO(
        "cluster.chunk_migration_p99", "cluster.migration.chunk_us",
        99, 5_000_000.0,
    ))
    ev.add(LatencySLO(
        "cluster.cutover_stall_p99", "cluster.migration.cutover_stall_us",
        99, 1_000_000.0,
    ))
    ev.add(ThresholdSLO(
        "cluster.readable",
        lambda: float(verified.get("rows", len(expected))),
        floor=float(len(expected)),
        message=lambda v: (
            f"cluster.readable: only {v:.0f} of {len(expected)} rows "
            f"readable after rebalance"
        ),
    ))

    engine = runtime.engine

    def watch():
        while True:
            yield engine.timeout(interval_us)
            _tick(run, on_tick, engine.now_us)

    watcher = engine.spawn(watch(), name="obs-tick")
    report = runtime.rebalance(CompressionAwareScheduler())
    watcher.cancel()
    verified["rows"] = runtime.verify_readable(expected)
    _tick(run, on_tick, engine.now_us)
    run.passed = run.slo_report.passed
    run.detail = {
        "shards": shards,
        "chunks": chunks,
        "tasks": len(report.tasks),
        "moved_pages": report.moved_pages,
        "makespan_ms": round(report.makespan_us / 1e3, 3),
    }


# ---------------------------------------------------------------------------
# raft: elections, partitions, and leader crashes on one volume
# ---------------------------------------------------------------------------


def _run_raft(
    run: ObservedRun, on_tick: Optional[TickFn], interval_us: float
) -> None:
    from repro.consensus.scenario import run_raft

    # The scenario owns its engine and SLO specs (the four split-brain
    # invariants plus schedule floors); the tick hook rides the per-ack
    # ``on_progress`` callback, like chaos.
    def progress(op: int, now_us: float) -> None:
        if op % 4 == 0:
            _tick(run, on_tick, now_us)

    report = run_raft(
        seed=run.seed,
        quick=run.quick,
        on_progress=progress,
        evaluator=run.evaluator,
    )
    run.registries.append(report.metrics)
    run.now_us = max(run.now_us, report.end_us)
    run.passed = report.passed
    run.chaos_report = report
    run.detail = {
        "commits_acked": report.commits_acked,
        "elections": report.elections,
        "fences": report.fences,
        "leader_crashes": report.leader_crashes,
    }


_RUNNERS = {
    "sysbench": _run_sysbench,
    "chaos": _run_chaos,
    "cluster": _run_cluster,
    "raft": _run_raft,
}

SCENARIOS = tuple(sorted(_RUNNERS))


def run_observed(
    name: str,
    seed: Optional[int] = None,
    quick: bool = True,
    capacity: int = 65536,
    sample: Optional[Dict[str, int]] = None,
    on_tick: Optional[TickFn] = None,
    interval_us: float = 2_000.0,
) -> ObservedRun:
    """Run one scenario under the full observability plane.

    Activates a fresh :class:`FlightRecorder` for the duration (scoped:
    a previously-active recorder is restored on exit), attaches an
    :class:`SLOEvaluator` with scenario-appropriate specs, and fires
    ``on_tick(run, now_us)`` every ``interval_us`` of simulated time.
    """
    if name not in _RUNNERS:
        raise KeyError(
            f"unknown scenario {name!r}; options: {', '.join(SCENARIOS)}"
        )
    run = ObservedRun(
        name=name,
        seed=DEFAULT_SEEDS[name] if seed is None else seed,
        quick=quick,
        recorder=FlightRecorder(capacity=capacity, sample=sample),
        evaluator=SLOEvaluator(),
    )
    with recording(run.recorder):
        _RUNNERS[name](run, on_tick, interval_us)
    return run


__all__ = [
    "DEFAULT_SEEDS",
    "ObservedRun",
    "SCENARIOS",
    "run_observed",
]
