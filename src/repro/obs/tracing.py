"""Span-based attribution of simulated microseconds.

The simulator passes explicit timestamps instead of sleeping, so a span
here is two points on the simulated clock: where a layer's work started
and where it finished.  A :class:`Trace` is a tree of spans covering one
request (an OLTP page write, a redo commit, a page read); a span's
**exclusive** time is its duration minus its children's durations, so
exclusive times over a trace always telescope to exactly the root's
end-to-end latency — the property the per-layer breakdowns rely on.

The :class:`Tracer` keeps an ambient span stack (the simulation is
single-threaded), so deep layers open spans without new parameters:

    sp = registry.tracer.begin("csd.device_write", start_us, layer="csd")
    ...
    registry.tracer.end(sp, completion.done_us)

``begin`` with no active trace starts one; ending the root records every
span into the registry's histograms (``trace.<name>.self_us`` and
``trace.<root>.total_us``) and publishes the finished trace as
``tracer.last``.  Replica fan-out overlaps the leader's timeline, so
replication code wraps follower work in :meth:`Tracer.suppressed` — only
the critical path is attributed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional


class Span:
    """One layer's contribution to one request."""

    __slots__ = ("name", "layer", "start_us", "end_us", "children", "parent")

    def __init__(self, name: str, layer: str, start_us: float,
                 parent: Optional["Span"] = None):
        self.name = name
        self.layer = layer
        self.start_us = float(start_us)
        self.end_us: Optional[float] = None
        self.children: List["Span"] = []
        self.parent = parent
        if parent is not None:
            parent.children.append(self)

    def end(self, end_us: float) -> None:
        if end_us < self.start_us:
            raise ValueError(
                f"span {self.name}: end {end_us} before start {self.start_us}"
            )
        self.end_us = float(end_us)

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def exclusive_us(self) -> float:
        """Time charged to this span itself (duration minus children)."""
        return self.duration_us - sum(c.duration_us for c in self.children)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, layer={self.layer!r}, "
                f"[{self.start_us:.1f}, {self.end_us}])")


class Trace:
    """A finished (or in-flight) span tree for one request."""

    def __init__(self, root: Span):
        self.root = root

    @property
    def total_us(self) -> float:
        return self.root.duration_us

    def spans(self) -> List[Span]:
        return list(self.root.walk())

    def breakdown(self) -> Dict[str, float]:
        """Exclusive microseconds per span name (summed over occurrences).

        Zero-time entries are kept: a span that appears with 0 µs is
        still informative (e.g. a cache hit).  The values sum to
        :attr:`total_us` exactly.
        """
        out: Dict[str, float] = {}
        for span in self.root.walk():
            out[span.name] = out.get(span.name, 0.0) + span.exclusive_us
        return out

    def layer_breakdown(self) -> Dict[str, float]:
        """Exclusive microseconds per layer; sums to :attr:`total_us`."""
        out: Dict[str, float] = {}
        for span in self.root.walk():
            out[span.layer] = out.get(span.layer, 0.0) + span.exclusive_us
        return out

    def render(self) -> str:
        """A printable tree with per-span attribution."""
        lines: List[str] = []

        def visit(span: Span, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{span.name:<34}{span.duration_us:>10.2f} us"
                f"  (self {span.exclusive_us:.2f} us, layer {span.layer})"
            )
            for child in span.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


class Tracer:
    """Ambient span stack bound to one :class:`MetricsRegistry`."""

    def __init__(self, registry=None) -> None:
        self._registry = registry
        self._stack: List[Span] = []
        self._suppress = 0
        #: Most recently finished trace (for callers that fired a request
        #: and want its breakdown without threading a handle through).
        self.last: Optional[Trace] = None

    @property
    def active(self) -> bool:
        return bool(self._stack)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, start_us: float,
              layer: str = "storage") -> Optional[Span]:
        """Open a span under the current one (or start a new trace)."""
        if self._suppress:
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(name, layer, start_us, parent)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span], end_us: float) -> None:
        """Close ``span``; finishing the root publishes the trace."""
        if span is None:
            return
        span.end(end_us)
        # Spans close LIFO in practice; tolerate out-of-order closes by
        # dropping everything above the closed span.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if span.parent is None:
            self._finish(Trace(span))

    @contextmanager
    def suppressed(self):
        """No spans are recorded inside this context (replica fan-out,
        background write-backs — work that overlaps the critical path)."""
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    def _finish(self, trace: Trace) -> None:
        self.last = trace
        if self._registry is None:
            return
        root = trace.root
        self._registry.histogram(
            f"trace.{root.name}.total_us", layer=root.layer
        ).record(root.duration_us)
        for span in root.walk():
            self._registry.histogram(
                f"trace.{span.name}.self_us", layer=span.layer
            ).record(span.exclusive_us)
