"""The flight recorder: a bounded ring of typed, sim-timestamped events.

Counters and histograms (``repro.obs.metrics``) answer "how much"; the
flight recorder answers "what happened, in what order".  Every layer of
the stack emits structured events into one process-wide recorder — page
I/O, FTL garbage collection, group-commit flushes, chunk migrations,
injected faults, codec selections, scrub repairs, SLO alerts — each
stamped with the *simulated* time at which it happened, so a dump reads
as the black box of a run: after a chaos failure or a perf regression,
``python -m repro events --load`` replays the history post-hoc.

Design constraints:

* **Zero cost when disabled.**  Call sites do ``rec = recorder_active()``
  and skip all field building when it returns ``None``; nothing is
  allocated, no instrument is touched.  Recording is opt-in per run
  (the ``events``/``dash`` commands, ``REPRO_OBS=1``, or the perf
  harness's fast leg).
* **Bounded.**  The ring holds ``capacity`` events; older events fall
  off the back (counted per channel, never silently).  Per-channel
  sampling knobs (``keep 1 in N``) cut hot channels like ``io`` down
  before they reach the ring.
* **Deterministic.**  Timestamps are simulated microseconds, sampling is
  counter-based (no RNG), and both dump formats are byte-stable for a
  seed — CI double-runs a scenario and diffs the dumps.
* **Outside the metrics universe.**  The recorder's own bookkeeping
  (emitted/sampled/dropped counts) lives in plain dicts, *not* registry
  instruments: enabling the recorder must not perturb a metrics
  snapshot, which the perf harness fingerprints.

Two dump formats: JSONL (one event per line, greppable) and a compact
binary framing (magic + string tables + fixed-width records) for large
rings; :meth:`FlightRecorder.load` sniffs the magic and reads either.
"""

from __future__ import annotations

import json
import os
import struct
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: The event channels the stack emits on, one per subsystem concern.
CHANNELS = (
    "io",         # page writes/reads, redo commits (storage layer)
    "gc",         # FTL garbage-collection relocations (csd layer)
    "commit",     # group-commit pipeline flushes (storage layer)
    "migration",  # chunk migration phases (cluster layer)
    "fault",      # injected faults + chaos phase transitions
    "codec",      # compression algorithm selections
    "scrub",      # scrub sweeps and corruption repairs
    "db",         # compute-layer checkpoints
    "slo",        # SLO evaluator alerts/recoveries
    "election",   # consensus votes, term bumps, fences (consensus layer)
    "compaction", # consolidation-policy compaction tasks + deferred debt
    "net",        # serving-layer admissions/rejections/completions
)

#: Binary dump magic (versioned; bump on format change).
_MAGIC = b"PSFR1\n"
#: Fixed-width record: t_us (f64), channel idx, kind idx, payload len.
_RECORD = struct.Struct("<dHHI")


@dataclass(frozen=True)
class RecordedEvent:
    """One structured fact at one simulated instant."""

    t_us: float
    channel: str
    kind: str
    fields: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "t_us": round(float(self.t_us), 3),
            "channel": self.channel,
            "kind": self.kind,
        }
        for key in sorted(self.fields):
            doc[key] = self.fields[key]
        return doc

    def render(self) -> str:
        extras = " ".join(
            f"{k}={self.fields[k]}" for k in sorted(self.fields)
        )
        return (
            f"[{self.t_us / 1e3:12.3f} ms] {self.channel:<9} "
            f"{self.kind:<18} {extras}"
        ).rstrip()


class FlightRecorder:
    """Bounded, sampled, deterministic event ring for one run."""

    def __init__(
        self,
        capacity: int = 65536,
        sample: Optional[Dict[str, int]] = None,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"recorder capacity must be positive: {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        #: channel -> keep 1 event in N (1 keeps all, 0 mutes the channel).
        self.sample: Dict[str, int] = dict(sample or {})
        self._ring: deque = deque(maxlen=capacity)
        # Plain-dict bookkeeping, deliberately NOT registry instruments:
        # enabling the recorder must not change any metrics snapshot.
        self.emitted: Dict[str, int] = {}
        self.sampled_out: Dict[str, int] = {}
        self.dropped: Dict[str, int] = {}
        self._seen: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def emit(self, t_us: float, channel: str, kind: str, /, **fields) -> None:
        """Record one event (subject to sampling and ring capacity).

        The first three parameters are positional-only so that ``kind``
        and friends stay usable as event field names (scrub and fault
        events carry a ``kind=`` payload field).
        """
        if not self.enabled:
            return
        self._seen[channel] = self._seen.get(channel, 0) + 1
        n = self.sample.get(channel, 1)
        if n != 1:
            if n < 1 or (self._seen[channel] - 1) % n != 0:
                self.sampled_out[channel] = (
                    self.sampled_out.get(channel, 0) + 1
                )
                return
        if len(self._ring) == self.capacity:
            evicted = self._ring[0]
            self.dropped[evicted.channel] = (
                self.dropped.get(evicted.channel, 0) + 1
            )
        self._ring.append(RecordedEvent(float(t_us), channel, kind, fields))
        self.emitted[channel] = self.emitted.get(channel, 0) + 1

    def splice(self, events: Iterable[RecordedEvent]) -> int:
        """Append already-recorded events to the ring, bypassing sampling.

        The parallel engine merges per-worker rings into the
        coordinator's recorder at barriers; each worker already applied
        its (identical) sampling knobs, so spliced events only pay the
        capacity bound here.  Callers are responsible for ordering the
        stream (see ``repro.engine.parallel.merge_event_streams``).
        """
        spliced = 0
        for ev in events:
            self._seen[ev.channel] = self._seen.get(ev.channel, 0) + 1
            if len(self._ring) == self.capacity:
                evicted = self._ring[0]
                self.dropped[evicted.channel] = (
                    self.dropped.get(evicted.channel, 0) + 1
                )
            self._ring.append(ev)
            self.emitted[ev.channel] = self.emitted.get(ev.channel, 0) + 1
            spliced += 1
        return spliced

    def clear(self) -> None:
        self._ring.clear()
        self.emitted.clear()
        self.sampled_out.clear()
        self.dropped.clear()
        self._seen.clear()

    # -- query -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        return sum(self.emitted.values())

    def events(
        self,
        channel: Optional[str] = None,
        kind: Optional[str] = None,
        since_us: Optional[float] = None,
        until_us: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[RecordedEvent]:
        """Filtered view of the retained ring, oldest first."""
        out = [
            ev
            for ev in self._ring
            if (channel is None or ev.channel == channel)
            and (kind is None or ev.kind == kind)
            and (since_us is None or ev.t_us >= since_us)
            and (until_us is None or ev.t_us < until_us)
        ]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-channel retained/sampled-out/dropped counts (sorted)."""
        channels = sorted(
            set(self.emitted) | set(self.sampled_out) | set(self.dropped)
        )
        return {
            ch: {
                "emitted": self.emitted.get(ch, 0),
                "sampled_out": self.sampled_out.get(ch, 0),
                "dropped": self.dropped.get(ch, 0),
            }
            for ch in channels
        }

    # -- dumps -------------------------------------------------------------

    def dump_jsonl(self, path: str) -> str:
        """One compact JSON object per line; byte-stable per seed."""
        with open(path, "w", encoding="utf-8") as handle:
            for ev in self._ring:
                handle.write(
                    json.dumps(
                        ev.as_dict(), sort_keys=True,
                        separators=(",", ":"),
                    )
                )
                handle.write("\n")
        return path

    def dump_binary(self, path: str) -> str:
        """Magic + string tables + fixed-width records; byte-stable."""
        channels = sorted({ev.channel for ev in self._ring})
        kinds = sorted({ev.kind for ev in self._ring})
        ch_idx = {c: i for i, c in enumerate(channels)}
        kind_idx = {k: i for i, k in enumerate(kinds)}
        header = json.dumps(
            {
                "channels": channels,
                "kinds": kinds,
                "count": len(self._ring),
                "sample": {k: self.sample[k] for k in sorted(self.sample)},
                "summary": self.summary(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(struct.pack("<I", len(header)))
            handle.write(header)
            for ev in self._ring:
                payload = json.dumps(
                    {k: ev.fields[k] for k in sorted(ev.fields)},
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
                handle.write(
                    _RECORD.pack(
                        round(float(ev.t_us), 3),
                        ch_idx[ev.channel],
                        kind_idx[ev.kind],
                        len(payload),
                    )
                )
                handle.write(payload)
        return path

    @classmethod
    def load(cls, path: str) -> "FlightRecorder":
        """Read a dump (binary or JSONL, sniffed by magic) back into a
        recorder for post-hoc filtering/replay."""
        with open(path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic == _MAGIC:
                return cls._load_binary(handle, path)
        rec = cls(capacity=1 << 22)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                t_us = doc.pop("t_us")
                channel = doc.pop("channel")
                kind = doc.pop("kind")
                rec.emit(t_us, channel, kind, **doc)
        return rec

    @classmethod
    def _load_binary(cls, handle, path: str) -> "FlightRecorder":
        (header_len,) = struct.unpack("<I", handle.read(4))
        header = json.loads(handle.read(header_len).decode("utf-8"))
        channels = header["channels"]
        kinds = header["kinds"]
        rec = cls(capacity=max(1, header.get("count", 1)))
        for _ in range(header["count"]):
            raw = handle.read(_RECORD.size)
            if len(raw) < _RECORD.size:
                raise ValueError(f"truncated event dump: {path}")
            t_us, ch, kind, payload_len = _RECORD.unpack(raw)
            payload = handle.read(payload_len)
            if len(payload) < payload_len:
                raise ValueError(f"truncated event dump: {path}")
            fields = json.loads(payload.decode("utf-8"))
            rec.emit(t_us, channels[ch], kinds[kind], **fields)
        # Restore the sampling config for inspection only AFTER replay —
        # the retained events already survived sampling once; applying
        # it again on load would thin them a second time.
        rec.sample = dict(header.get("sample", {}))
        return rec


# ---------------------------------------------------------------------------
# process-wide activation (mirrors repro.perf.runtime's configure pattern)
# ---------------------------------------------------------------------------

_active: Optional[FlightRecorder] = None


def recorder_active() -> Optional[FlightRecorder]:
    """The process-wide recorder, or ``None`` when recording is off.

    This is the hot-path guard: call sites bail on ``None`` before
    building any event fields, so a disabled recorder costs one global
    load and one comparison.
    """
    return _active


def activate(recorder: Optional[FlightRecorder] = None, **kwargs) -> FlightRecorder:
    """Install a process-wide recorder (every registry/volume shares it,
    so a cluster of shards lands in one ordered event stream)."""
    global _active
    _active = recorder if recorder is not None else FlightRecorder(**kwargs)
    return _active


def deactivate() -> None:
    global _active
    _active = None


@contextmanager
def recording(recorder: Optional[FlightRecorder] = None, **kwargs):
    """Scoped activation; restores the previous recorder on exit."""
    global _active
    previous = _active
    rec = activate(recorder, **kwargs)
    try:
        yield rec
    finally:
        _active = previous


def parse_sample_spec(spec: str) -> Dict[str, int]:
    """``"io=8,gc=1"`` -> ``{"io": 8, "gc": 1}`` (keep 1 in N)."""
    out: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad sample spec {part!r}: expected channel=N"
            )
        channel, _, n = part.partition("=")
        out[channel.strip()] = int(n)
    return out


def configure_from_env(env: Optional[Mapping[str, str]] = None) -> None:
    """Honour ``REPRO_OBS``: ``1``/``on`` activates a default recorder;
    ``capacity=N`` and ``sample=io:8;gc:1`` tune it; unset/``0`` leaves
    recording off (an already-active recorder is kept as-is)."""
    value = (env if env is not None else os.environ).get("REPRO_OBS", "")
    value = value.strip().lower()
    if not value or value in ("0", "off", "false"):
        return
    if _active is not None:
        return
    capacity = 65536
    sample: Dict[str, int] = {}
    if value not in ("1", "on", "true"):
        for part in value.split(","):
            key, _, val = part.strip().partition("=")
            if key == "capacity":
                capacity = int(val)
            elif key == "sample":
                sample = parse_sample_spec(val.replace(";", ",").replace(":", "="))
            else:
                raise ValueError(f"REPRO_OBS: unknown key {key!r}")
    activate(capacity=capacity, sample=sample)


def emit(t_us: float, channel: str, kind: str, /, **fields) -> None:
    """Convenience: emit into the active recorder (no-op when off)."""
    rec = _active
    if rec is not None:
        rec.emit(t_us, channel, kind, **fields)


__all__ = [
    "CHANNELS",
    "FlightRecorder",
    "RecordedEvent",
    "activate",
    "configure_from_env",
    "deactivate",
    "emit",
    "parse_sample_spec",
    "recording",
    "recorder_active",
]
