"""Static, self-contained HTML report for an observed run.

``python -m repro dash <scenario> --html out.html`` (and the CI
obs-smoke job) render one file with zero external assets: inline CSS,
inline SVG sparklines, no JavaScript.  The report is **byte-
deterministic** for a given ``(scenario, seed, quick)`` — every float
is formatted with a fixed precision, every table is sorted, and no
wall-clock time, object id, or environment detail ever reaches the
output.  CI renders the report twice and diffs the bytes.
"""

from __future__ import annotations

import html
from typing import Dict, List, Sequence

from repro.obs.dash import collect_stats
from repro.obs.scenarios import ObservedRun

_CSS = """
body { font-family: monospace; margin: 2em; color: #1a1a2e; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; margin: 0.5em 0; }
td, th { border: 1px solid #bbb; padding: 0.25em 0.7em; text-align: right; }
th { background: #eee; } td.l, th.l { text-align: left; }
.ok { color: #0a7a2f; } .fail { color: #b00020; font-weight: bold; }
.verdict { font-size: 1.2em; margin: 0.8em 0; }
svg { vertical-align: middle; }
""".strip()


def _svg_sparkline(
    values: Sequence[float], width: int = 120, height: int = 18
) -> str:
    """An inline SVG polyline of ``values`` (empty series -> dash)."""
    tail = [float(v) for v in values][-48:]
    if not tail:
        return "&mdash;"
    lo, hi = min(tail), max(tail)
    span = hi - lo
    n = len(tail)
    points = []
    for i, v in enumerate(tail):
        x = 2 + (width - 4) * (i / max(1, n - 1))
        frac = (v - lo) / span if span > 0 else 0.0
        y = height - 2 - (height - 4) * frac
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline fill="none" stroke="#2d6cdf" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


def _table(headers: List[str], rows: List[List[str]],
           left_cols: int = 1) -> List[str]:
    out = ["<table><tr>"]
    for i, head in enumerate(headers):
        cls = ' class="l"' if i < left_cols else ""
        out.append(f"<th{cls}>{html.escape(head)}</th>")
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="l"' if i < left_cols else ""
            out.append(f"<td{cls}>{cell}</td>")
        out.append("</tr>")
    out.append("</table>")
    return out


def render_html(run: ObservedRun, events_tail: int = 40) -> str:
    """The full report as one HTML string (byte-deterministic)."""
    stats = collect_stats(run)
    title = (
        f"repro observability report — {stats['scenario']} "
        f"(seed {stats['seed']})"
    )
    verdict_ok = stats["passed"]
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f'<p class="verdict {"ok" if verdict_ok else "fail"}">'
        f'verdict: {"PASS" if verdict_ok else "FAIL"} '
        f"&middot; alerts: {stats['alerts']} "
        f"&middot; simulated end: {stats['now_us'] / 1e3:.3f} ms</p>",
        "<p class='l'>detail: " + html.escape(
            " ".join(f"{k}={run.detail[k]}" for k in sorted(run.detail))
        ) + "</p>",
    ]

    parts.append("<h2>SLOs</h2>")
    slo_rows = []
    for slo in stats["slos"]:
        mark = (
            '<span class="ok">ok</span>' if slo["ok"]
            else '<span class="fail">BREACH</span>'
        )
        slo_rows.append([
            html.escape(slo["name"]),
            mark,
            f"{slo['value']:.3f}",
            f"{slo['target']:.3f}",
            _svg_sparkline(slo["history"]),
        ])
    parts.extend(_table(
        ["slo", "state", "value", "target", "history"], slo_rows,
    ))

    if stats["latencies"]:
        parts.append("<h2>Latency</h2>")
        parts.extend(_table(
            ["metric", "n", "p50 (us)", "p99 (us)"],
            [
                [html.escape(metric), str(row["count"]),
                 f"{row['p50']:.1f}", f"{row['p99']:.1f}"]
                for metric, row in sorted(stats["latencies"].items())
            ],
        ))

    if stats["resources"]:
        parts.append("<h2>Devices</h2>")
        parts.extend(_table(
            ["resource", "queue depth", "utilization"],
            [
                [html.escape(row["resource"]), f"{row['depth']:.0f}",
                 f"{row['util']:.3f}"]
                for row in stats["resources"]
            ],
        ))

    summary_rows = [["compression_ratio",
                     f"{stats['compression_ratio']:.3f}"]]
    for group in ("migration", "chaos"):
        for key in sorted(stats[group]):
            summary_rows.append([f"{group}.{key}", str(stats[group][key])])
    parts.append("<h2>Counters</h2>")
    parts.extend(_table(["counter", "value"], summary_rows))

    if stats["channels"]:
        parts.append("<h2>Flight recorder</h2>")
        parts.extend(_table(
            ["channel", "emitted", "sampled out", "dropped"],
            [
                [html.escape(ch), str(row["emitted"]),
                 str(row["sampled_out"]), str(row["dropped"])]
                for ch, row in stats["channels"].items()
            ],
        ))
        tail = run.recorder.events(limit=events_tail)
        if tail:
            parts.append(
                f"<h2>Last {len(tail)} events</h2><pre>"
                + html.escape("\n".join(ev.render() for ev in tail))
                + "</pre>"
            )

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_html(run: ObservedRun, path: str, events_tail: int = 40) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html(run, events_tail=events_tail))
    return path


__all__ = ["render_html", "write_html"]
