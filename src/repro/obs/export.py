"""Registry exporters: JSON for tooling, Prometheus text for scrapers.

The Prometheus exporter follows the text exposition format: metric names
are sanitized (dots become underscores), label values are escaped
(backslash, double-quote, newline — the three characters the format
requires), every family gets ``# HELP`` and ``# TYPE`` exactly once,
histograms emit cumulative ``_bucket{le=...}`` lines ending in ``+Inf``
plus ``_sum``/``_count``, and callback gauges are evaluated at export
time.  Timeseries export their most recent window as a gauge (scrapers
keep their own history).
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeseries import TimeSeries

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The whole registry as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def prometheus_name(name: str) -> str:
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: ``\\`` then ``"`` then newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help_text(text: str) -> str:
    """HELP lines escape backslash and newline (quotes stay literal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: Dict[str, str],
                   extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{prometheus_name(k)}="{escape_label_value(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of every instrument."""
    lines: List[str] = []
    declared: set = set()

    def declare(name: str, kind: str, source: str) -> None:
        # HELP and TYPE exactly once per family, even when many labeled
        # variants (or dotted names that sanitize identically) share it.
        if name in declared:
            return
        declared.add(name)
        lines.append(
            f"# HELP {name} "
            f"{escape_help_text(f'repro instrument {source}')}"
        )
        lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        name = prometheus_name(instrument.name)
        labels = instrument.labels
        if isinstance(instrument, Counter):
            declare(name, "counter", instrument.name)
            lines.append(f"{name}{_render_labels(labels)} {instrument.value:g}")
        elif isinstance(instrument, Gauge):
            declare(name, "gauge", instrument.name)
            lines.append(f"{name}{_render_labels(labels)} {instrument.value:g}")
        elif isinstance(instrument, Histogram):
            declare(name, "histogram", instrument.name)
            for le, cumulative in instrument.cumulative_buckets():
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(labels, {'le': f'{le:g}'})}"
                    f" {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_render_labels(labels, {'le': '+Inf'})}"
                f" {instrument.count}"
            )
            lines.append(
                f"{name}_sum{_render_labels(labels)} {instrument.total:g}"
            )
            lines.append(
                f"{name}_count{_render_labels(labels)} {instrument.count}"
            )
        elif isinstance(instrument, TimeSeries):
            declare(name, "gauge", instrument.name)
            points = instrument.points()
            latest = points[-1][1] if points else 0.0
            lines.append(f"{name}{_render_labels(labels)} {latest:g}")
    return "\n".join(lines) + "\n"
