"""Counters sliced over simulated-time windows.

Benchmarks want throughput-over-time curves (ops/s as GC kicks in, commit
rate during a migration) without keeping per-op samples.  A
:class:`TimeSeries` buckets increments into fixed ``window_us`` slices of
the simulated clock; memory is bounded by ``max_windows`` — when the
span of observed windows exceeds it, the oldest windows are dropped (the
recent curve is what plots use).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.metrics import Instrument


class TimeSeries(Instrument):
    """Per-window accumulator on the simulated microsecond clock."""

    kind = "timeseries"

    def __init__(self, name: str, labels=None, window_us: float = 1e6,
                 max_windows: int = 4096):
        super().__init__(name, labels)
        if window_us <= 0:
            raise ValueError(f"window must be positive, got {window_us}")
        self.window_us = float(window_us)
        self.max_windows = max_windows
        self._windows: Dict[int, float] = {}
        self.total = 0.0

    def record(self, t_us: float, value: float = 1.0) -> None:
        idx = int(t_us // self.window_us)
        self._windows[idx] = self._windows.get(idx, 0.0) + value
        self.total += value
        if len(self._windows) > self.max_windows:
            for old in sorted(self._windows)[: len(self._windows)
                                             - self.max_windows]:
                del self._windows[old]

    def points(self) -> List[Tuple[float, float]]:
        """``(window_start_us, value)`` pairs in time order."""
        return [
            (idx * self.window_us, self._windows[idx])
            for idx in sorted(self._windows)
        ]

    def rate_points(self) -> List[Tuple[float, float]]:
        """``(window_start_s, value_per_second)`` pairs for plotting."""
        per_s = 1e6 / self.window_us
        return [
            (t_us / 1e6, value * per_s) for t_us, value in self.points()
        ]

    def merged(self, other: "TimeSeries") -> "TimeSeries":
        if self.window_us != other.window_us:
            raise ValueError(
                f"cannot merge {self.name}: window sizes differ"
            )
        out = TimeSeries(self.name, self.labels, self.window_us,
                         self.max_windows)
        out._windows = dict(self._windows)
        for idx, value in other._windows.items():
            out._windows[idx] = out._windows.get(idx, 0.0) + value
        out.total = self.total + other.total
        return out

    def reset(self) -> None:
        self._windows.clear()
        self.total = 0.0

    def payload(self) -> Dict:
        return {
            "window_us": self.window_us,
            "total": self.total,
            "points": [[t, v] for t, v in self.points()],
        }
