"""Declarative SLOs evaluated continuously over the metrics registry.

An :class:`SLO` spec says what "healthy" means — a latency percentile
under a target, an error ratio inside a budget, a burn rate over a
trailing window of a :class:`~repro.obs.timeseries.TimeSeries`, a count
above a floor, or an arbitrary invariant that yields violation strings.
The :class:`SLOEvaluator` evaluates a list of specs against one or more
registries, keeps a bounded history per spec (the dashboard's burn-rate
sparklines), emits ``slo`` channel alert/recovery events into the
flight recorder on status transitions, and produces a final
:class:`SLOReport` verdict.

All pass/fail logic in the repo flows through this one evaluator: the
chaos harness's six invariants (I1–I6) and the perf harness's
regression gate are expressed as specs — same violation strings, same
order, one code path deciding red or green.

Evaluation is read-only: specs merge histogram snapshots and read
counters but never create registry instruments, so an evaluator
attached to a run leaves the metrics snapshot (and hence the perf
fingerprints) untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.events import recorder_active
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timeseries import TimeSeries


@dataclass(frozen=True)
class SLOStatus:
    """Outcome of evaluating one spec at one instant."""

    name: str
    ok: bool
    value: float
    target: float
    t_us: float
    detail: str = ""
    #: Exact violation strings (one per breach) — invariant specs carry
    #: several; threshold-style specs carry one when breached.
    violations: Tuple[str, ...] = ()


class SLO:
    """Base spec: subclasses implement :meth:`evaluate`."""

    name: str = "slo"
    description: str = ""

    def evaluate(
        self, registries: Sequence[MetricsRegistry], now_us: float
    ) -> SLOStatus:
        raise NotImplementedError

    # -- shared registry readers ------------------------------------------

    @staticmethod
    def _merged_histogram(
        registries: Sequence[MetricsRegistry], metric: str
    ) -> Optional[Histogram]:
        merged: Optional[Histogram] = None
        for registry in registries:
            for inst in registry.find(metric):
                hist = getattr(inst, "histogram", inst)
                if not isinstance(hist, Histogram):
                    continue
                merged = hist if merged is None else merged.merged(hist)
        return merged

    @staticmethod
    def _counter_total(
        registries: Sequence[MetricsRegistry], metric: str
    ) -> float:
        total = 0.0
        for registry in registries:
            for inst in registry.find(metric):
                total += float(getattr(inst, "value", 0.0))
        return total


class LatencySLO(SLO):
    """``percentile(metric) <= target_us`` over merged histograms."""

    def __init__(
        self,
        name: str,
        metric: str,
        percentile: float,
        target_us: float,
        min_count: int = 1,
    ) -> None:
        self.name = name
        self.metric = metric
        self.percentile = float(percentile)
        self.target_us = float(target_us)
        self.min_count = min_count
        self.description = (
            f"p{percentile:g}({metric}) <= {target_us:g}us"
        )

    def evaluate(self, registries, now_us) -> SLOStatus:
        hist = self._merged_histogram(registries, self.metric)
        count = hist.count if hist is not None else 0
        if hist is None or count < self.min_count:
            # Not enough signal yet: vacuously healthy.
            return SLOStatus(self.name, True, 0.0, self.target_us, now_us,
                             detail="no data")
        value = hist.percentile(self.percentile)
        ok = value <= self.target_us
        violations = ()
        if not ok:
            violations = (
                f"{self.name}: p{self.percentile:g}({self.metric}) "
                f"{value:.1f}us exceeds {self.target_us:.1f}us",
            )
        return SLOStatus(
            self.name, ok, value, self.target_us, now_us,
            detail=f"n={count}", violations=violations,
        )


class ErrorBudgetSLO(SLO):
    """``bad / max(total, 1) <= budget`` over counter families."""

    def __init__(
        self,
        name: str,
        bad_metric: str,
        total_metric: Optional[str] = None,
        budget: float = 0.0,
        message: Optional[Callable[[float, float], str]] = None,
    ) -> None:
        self.name = name
        self.bad_metric = bad_metric
        self.total_metric = total_metric
        self.budget = float(budget)
        self.message = message
        self.description = (
            f"{bad_metric}/{total_metric or 'op'} <= {budget:g}"
        )

    def evaluate(self, registries, now_us) -> SLOStatus:
        bad = self._counter_total(registries, self.bad_metric)
        if self.total_metric is None:
            ratio, total = bad, bad
        else:
            total = self._counter_total(registries, self.total_metric)
            ratio = bad / total if total > 0 else 0.0
        ok = ratio <= self.budget
        violations = ()
        if not ok:
            if self.message is not None:
                violations = (self.message(bad, total),)
            else:
                violations = (
                    f"{self.name}: error ratio {ratio:.4f} exceeds "
                    f"budget {self.budget:.4f} "
                    f"({bad:.0f} bad / {total:.0f} total)",
                )
        return SLOStatus(self.name, ok, ratio, self.budget, now_us,
                         violations=violations)


class BurnRateSLO(SLO):
    """Trailing-window burn rate over a :class:`TimeSeries`.

    ``allowed_per_window`` is the budgeted event mass per time-series
    window; the burn rate is ``observed / allowed`` averaged over the
    last ``windows`` windows.  Burn > ``max_burn`` breaches (the classic
    multi-window budget alarm, here over simulated time).
    """

    def __init__(
        self,
        name: str,
        metric: str,
        allowed_per_window: float,
        windows: int = 5,
        max_burn: float = 1.0,
    ) -> None:
        if allowed_per_window <= 0:
            raise ValueError("allowed_per_window must be positive")
        self.name = name
        self.metric = metric
        self.allowed_per_window = float(allowed_per_window)
        self.windows = windows
        self.max_burn = float(max_burn)
        self.description = (
            f"burn({metric}) <= {max_burn:g}x over {windows} windows"
        )

    def evaluate(self, registries, now_us) -> SLOStatus:
        points: List[Tuple[float, float]] = []
        for registry in registries:
            for inst in registry.find(self.metric):
                if isinstance(inst, TimeSeries):
                    points.extend(inst.points())
        points.sort()
        tail = points[-self.windows:] if points else []
        if not tail:
            return SLOStatus(self.name, True, 0.0, self.max_burn, now_us,
                             detail="no data")
        observed = sum(v for _, v in tail) / len(tail)
        burn = observed / self.allowed_per_window
        ok = burn <= self.max_burn
        violations = ()
        if not ok:
            violations = (
                f"{self.name}: burn rate {burn:.2f}x exceeds "
                f"{self.max_burn:.2f}x "
                f"({observed:.1f}/window vs {self.allowed_per_window:.1f} "
                f"budgeted)",
            )
        return SLOStatus(self.name, ok, burn, self.max_burn, now_us,
                         violations=violations)


class ThresholdSLO(SLO):
    """``value_fn() >= floor`` (or ``<= ceiling``) with an exact breach
    message — the shape the chaos schedule floors and the perf speedup
    gate need."""

    def __init__(
        self,
        name: str,
        value_fn: Callable[[], float],
        floor: Optional[float] = None,
        ceiling: Optional[float] = None,
        message: Optional[Callable[[float], str]] = None,
    ) -> None:
        if (floor is None) == (ceiling is None):
            raise ValueError("exactly one of floor/ceiling is required")
        self.name = name
        self.value_fn = value_fn
        self.floor = floor
        self.ceiling = ceiling
        self.message = message
        bound = f">= {floor:g}" if floor is not None else f"<= {ceiling:g}"
        self.description = f"{name} {bound}"

    def evaluate(self, registries, now_us) -> SLOStatus:
        value = float(self.value_fn())
        if self.floor is not None:
            ok, target = value >= self.floor, self.floor
        else:
            ok, target = value <= self.ceiling, self.ceiling
        violations = ()
        if not ok:
            if self.message is not None:
                violations = (self.message(value),)
            else:
                violations = (
                    f"{self.name}: value {value:g} breaches "
                    f"{self.description}",
                )
        return SLOStatus(self.name, ok, value, target, now_us,
                         violations=violations)


class InvariantSLO(SLO):
    """Wraps a callable returning violation strings (empty = healthy).

    The escape hatch for pass/fail logic that is not a single scalar:
    the chaos harness's read-back and divergence sweeps collect exact
    violation strings during the run and this spec surfaces them
    verbatim, preserving message text and ordering.
    """

    def __init__(
        self,
        name: str,
        check: Callable[[], Iterable[str]],
        description: str = "",
    ) -> None:
        self.name = name
        self.check = check
        self.description = description or name

    def evaluate(self, registries, now_us) -> SLOStatus:
        violations = tuple(self.check())
        return SLOStatus(
            self.name, not violations, float(len(violations)), 0.0,
            now_us, violations=violations,
        )


@dataclass
class SLOReport:
    """Final verdict: every spec's last status, flattened violations."""

    statuses: List[SLOStatus] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(s.ok for s in self.statuses)

    def violations(self) -> List[str]:
        out: List[str] = []
        for status in self.statuses:
            out.extend(status.violations)
        return out

    def render(self) -> str:
        lines = []
        for s in self.statuses:
            mark = "OK  " if s.ok else "FAIL"
            lines.append(
                f"  [{mark}] {s.name}: value={s.value:.3f} "
                f"target={s.target:.3f}"
                + (f" ({s.detail})" if s.detail else "")
            )
            for v in s.violations:
                lines.append(f"         - {v}")
        verdict = "SLO verdict: PASS" if self.passed else "SLO verdict: FAIL"
        return "\n".join([verdict] + lines)


class SLOEvaluator:
    """Evaluates specs continuously; the one arbiter of pass/fail.

    ``registries`` may grow over a run (cluster shards each own one).
    Each :meth:`evaluate` records one history point per spec (bounded,
    for sparklines) and emits ``slo`` events into the active flight
    recorder on ok->breach (``alert``) and breach->ok (``recovered``)
    transitions.
    """

    def __init__(
        self,
        registries: Optional[Sequence[MetricsRegistry]] = None,
        specs: Optional[Sequence[SLO]] = None,
        history: int = 256,
    ) -> None:
        self.registries: List[MetricsRegistry] = list(registries or [])
        self.specs: List[SLO] = list(specs or [])
        self.history_limit = history
        self.history: Dict[str, deque] = {}
        self.last: Dict[str, SLOStatus] = {}
        self.evaluations = 0
        self.alerts = 0

    def add(self, spec: SLO) -> SLO:
        self.specs.append(spec)
        return spec

    def attach(self, registry: MetricsRegistry) -> None:
        if registry not in self.registries:
            self.registries.append(registry)

    def evaluate(self, now_us: float) -> List[SLOStatus]:
        self.evaluations += 1
        statuses = []
        rec = recorder_active()
        for spec in self.specs:
            status = spec.evaluate(self.registries, now_us)
            statuses.append(status)
            hist = self.history.setdefault(
                spec.name, deque(maxlen=self.history_limit)
            )
            hist.append((now_us, status.value, status.ok))
            previous = self.last.get(spec.name)
            if rec is not None:
                if status.ok and previous is not None and not previous.ok:
                    rec.emit(now_us, "slo", "recovered", slo=spec.name,
                             value=round(status.value, 3))
                elif not status.ok and (previous is None or previous.ok):
                    self.alerts += 1
                    rec.emit(
                        now_us, "slo", "alert", slo=spec.name,
                        value=round(status.value, 3),
                        target=round(status.target, 3),
                        breaches=len(status.violations),
                    )
            elif not status.ok and (previous is None or previous.ok):
                self.alerts += 1
            self.last[spec.name] = status
        return statuses

    def daemon(self, engine, interval_us: float = 20_000.0):
        """Generator for ``engine.spawn``: evaluate every ``interval_us``
        of simulated time until cancelled (keep the Process handle and
        ``cancel()`` it before any ``run_until_idle``)."""
        while True:
            yield engine.timeout(interval_us)
            self.evaluate(engine.now_us)

    def spawn_daemon(self, engine, interval_us: float = 20_000.0):
        return engine.spawn(
            self.daemon(engine, interval_us), name="slo-evaluator"
        )

    def report(self, now_us: float) -> SLOReport:
        """Final evaluation pass + verdict over every spec."""
        return SLOReport(statuses=self.evaluate(now_us))

    def sparkline_values(self, name: str) -> List[float]:
        return [value for _, value, _ in self.history.get(name, ())]


__all__ = [
    "BurnRateSLO",
    "ErrorBudgetSLO",
    "InvariantSLO",
    "LatencySLO",
    "SLO",
    "SLOEvaluator",
    "SLOReport",
    "SLOStatus",
    "ThresholdSLO",
]
