"""Instruments and the registry that owns them.

Design constraints, in order:

* **Fixed memory.**  Benchmarks run millions of simulated operations; the
  seed's unbounded ``List[float]`` stats (``StorageNode.page_write_stats``
  and friends) grew without limit.  :class:`Histogram` uses log-spaced
  buckets so percentile queries cost O(buckets), never O(samples).
* **Mergeable.**  Replicas and shards each keep their own instruments;
  cluster-level views merge histograms without touching raw samples.
* **Label-keyed.**  One metric name covers many instances
  (``csd.device.write_us{node="node-0", device="PolarCSD2.0"}``), exactly
  like Prometheus, so exporters need no special cases.

Percentiles use the same nearest-rank convention as
:func:`repro.common.latency.percentile`; a bucket's reported value is the
geometric midpoint of its bounds, so with the default growth factor of
1.04 the relative error is bounded by ~2%.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default cap on distinct label-sets per metric family.  High enough
#: that every in-repo scenario stays far below it; cluster-scale runs
#: with runaway per-key labels overflow into ``__other__`` instead of
#: growing the registry without bound.
DEFAULT_MAX_LABEL_SETS = 256

#: Label value marking the shared overflow bucket of a capped family.
OVERFLOW_BUCKET = "__other__"


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Base: a named, labeled measurement owned by one registry."""

    kind = "instrument"

    def __init__(self, name: str, labels: Optional[Dict[str, object]] = None):
        self.name = name
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()
        }

    def reset(self) -> None:
        raise NotImplementedError

    def payload(self) -> Dict:
        """The instrument's value(s) as a JSON-able dict."""
        raise NotImplementedError

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "type": self.kind,
            **self.payload(),
        }


class Counter(Instrument):
    """Monotonically increasing value (ops, bytes, events)."""

    kind = "counter"

    def __init__(self, name: str, labels=None):
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self._value += amount

    # ``add`` reads better for byte counters.
    add = inc

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def payload(self) -> Dict:
        return {"value": self._value}


class Gauge(Instrument):
    """A point-in-time value, set directly or computed lazily.

    ``fn`` gauges sample live state (cache hit rates, FTL utilization) at
    snapshot time, so the hot path pays nothing for them.
    """

    kind = "gauge"

    def __init__(self, name: str, labels=None,
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def reset(self) -> None:
        if self._fn is None:
            self._value = 0.0

    def payload(self) -> Dict:
        return {"value": self.value}


class Histogram(Instrument):
    """Fixed-memory log-bucketed distribution.

    Values below ``min_value`` land in bucket 0; above that, bucket ``i``
    covers ``[min_value * growth**(i-1), min_value * growth**i)``.  Bucket
    counts are kept sparsely (a dict), but the index range is clamped, so
    memory is bounded by the bucket universe regardless of sample count.
    Exact ``min``/``max``/``sum`` are tracked on the side, so ``mean`` and
    the distribution extremes are exact; only interior percentiles are
    approximated.
    """

    kind = "histogram"

    def __init__(self, name: str, labels=None, growth: float = 1.04,
                 min_value: float = 1e-3, max_value: float = 1e12):
        super().__init__(name, labels)
        if growth <= 1.0:
            raise ValueError(f"growth factor must exceed 1, got {growth}")
        self.growth = growth
        self.min_value = min_value
        self.max_value = max_value
        self._log_growth = math.log(growth)
        self._max_bucket = (
            int(math.log(max_value / min_value) / self._log_growth) + 1
        )
        self._counts: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            value = 0.0
        idx = self._bucket(value)
        self._counts[idx] = self._counts.get(idx, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _bucket(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        idx = int(math.log(value / self.min_value) / self._log_growth) + 1
        return min(idx, self._max_bucket)

    def _bucket_value(self, idx: int) -> float:
        if idx == 0:
            return self.min_value
        # Geometric midpoint of the bucket's bounds.
        return self.min_value * math.exp((idx - 0.5) * self._log_growth)

    def bucket_upper_bound(self, idx: int) -> float:
        if idx == 0:
            return self.min_value
        return self.min_value * math.exp(idx * self._log_growth)

    # -- summary -----------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile estimate; exact at the extremes."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of range")
        if self._count == 0:
            return 0.0
        if pct == 0.0:
            return self.min
        rank = math.ceil(pct / 100.0 * self._count)
        cumulative = 0
        for idx in sorted(self._counts):
            cumulative += self._counts[idx]
            if cumulative >= rank:
                estimate = self._bucket_value(idx)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def fraction_above(self, threshold: float) -> float:
        """Approximate fraction of samples strictly above ``threshold``."""
        if self._count == 0:
            return 0.0
        above = sum(
            count for idx, count in self._counts.items()
            if self._bucket_value(idx) > threshold
        )
        return above / self._count

    # -- merge -------------------------------------------------------------

    def _compatible(self, other: "Histogram") -> bool:
        return (
            self.growth == other.growth
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both distributions (associative,
        commutative): ``a.merged(b)`` and ``b.merged(a)`` export the same
        bytes.  Bucket keys are folded in sorted order so the result's
        count-dict iteration order never depends on which side recorded
        first, and the sums are combined with :func:`math.fsum` (exactly
        rounded) so float accumulation order cannot leak into exports.
        """
        return Histogram.merged_many([self, other])

    @staticmethod
    def merged_many(parts: Iterable["Histogram"]) -> "Histogram":
        """Merge any number of compatible histograms, order-independently.

        Parallel snapshot merges fold one histogram per worker; the fold
        order (worker id, arrival order, ...) must never change the merged
        bytes.  Counts are summed per sorted bucket key and the value sums
        combined with ``math.fsum``, which returns the correctly rounded
        float sum regardless of permutation.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("merged_many needs at least one histogram")
        first = parts[0]
        for other in parts[1:]:
            if not first._compatible(other):
                raise ValueError(
                    f"cannot merge {first.name}: bucket layouts differ"
                )
        out = Histogram(first.name, first.labels, first.growth,
                        first.min_value, first.max_value)
        keys = sorted({idx for part in parts for idx in part._counts})
        for idx in keys:
            out._counts[idx] = sum(p._counts.get(idx, 0) for p in parts)
        out._count = sum(p._count for p in parts)
        out._sum = math.fsum(p._sum for p in parts)
        out._min = min(p._min for p in parts)
        out._max = max(p._max for p in parts)
        return out

    def reset(self) -> None:
        self._counts.clear()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- export ------------------------------------------------------------

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le_upper_bound, cumulative_count)`` pairs."""
        out: List[Tuple[float, int]] = []
        cumulative = 0
        for idx in sorted(self._counts):
            cumulative += self._counts[idx]
            out.append((self.bucket_upper_bound(idx), cumulative))
        return out

    def payload(self) -> Dict:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class BoundedSeries:
    """A drop-in replacement for the seed's unbounded stat lists.

    Records every sample into a registry :class:`Histogram` (fixed
    memory, real percentiles) while keeping a bounded ring of the most
    recent raw samples so existing ``list(stats)`` consumers still work.
    ``len()`` reports the *total* recorded count since the last
    ``clear()``, matching the old list semantics for the common
    ``len(stats) == before + 1`` assertions; iteration yields only the
    retained window.
    """

    WINDOW = 4096

    def __init__(self, histogram: Histogram, window: int = WINDOW):
        self.histogram = histogram
        self._recent: deque = deque(maxlen=window)

    def append(self, value: float) -> None:
        self.histogram.record(value)
        self._recent.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.append(value)

    def clear(self) -> None:
        self.histogram.reset()
        self._recent.clear()

    def __len__(self) -> int:
        return self.histogram.count

    def __iter__(self) -> Iterator[float]:
        return iter(self._recent)

    def __bool__(self) -> bool:
        return self.histogram.count > 0

    # LatencyStats-style accessors, so call sites migrate freely.

    @property
    def count(self) -> int:
        return self.histogram.count

    @property
    def mean_us(self) -> float:
        return self.histogram.mean

    @property
    def p50_us(self) -> float:
        return self.histogram.p50

    @property
    def p95_us(self) -> float:
        return self.histogram.p95

    @property
    def p99_us(self) -> float:
        return self.histogram.p99

    @property
    def max_us(self) -> float:
        return self.histogram.max


class MetricsRegistry:
    """Owns every instrument of one simulation universe.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    the same (name, labels) twice returns the same object, so call sites
    never coordinate.  A :class:`~repro.obs.tracing.Tracer` is attached to
    each registry; components reach it as ``registry.tracer`` so span
    context flows through the stack without threading extra parameters.
    """

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        if max_label_sets < 1:
            raise ValueError(
                f"max_label_sets must be positive: {max_label_sets}"
            )
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}
        #: Cardinality guard: cap on distinct label-sets per metric name.
        self.max_label_sets = max_label_sets
        self._label_sets: Dict[str, int] = {}
        # Imported lazily to avoid a module cycle (tracing records spans
        # back into this registry's histograms).
        from repro.obs.tracing import Tracer

        self.tracer = Tracer(self)

    # -- get-or-create -----------------------------------------------------

    def _admit(self, name: str, labels: Dict) -> Tuple[Dict, bool]:
        """Cardinality guard: decide where a *new* label-set lands.

        Families below the cap admit the label-set as-is.  At the cap,
        the lookup is routed to the family's shared ``__other__`` bucket
        and ``obs.label_overflow{metric=...}`` counts the routed lookup,
        so saturation is visible instead of silent.
        """
        if self._label_sets.get(name, 0) < self.max_label_sets:
            self._label_sets[name] = self._label_sets.get(name, 0) + 1
            return labels, False
        self._bump_overflow(name)
        return {"overflow": OVERFLOW_BUCKET}, True

    def _bump_overflow(self, name: str) -> None:
        # Created directly (not via counter()) so the overflow counter
        # itself can never recurse through the admission check.
        key = ("obs.label_overflow", (("metric", name),))
        counter = self._instruments.get(key)
        if counter is None:
            counter = Counter("obs.label_overflow", {"metric": name})
            self._instruments[key] = counter
        counter.inc()

    def _get_or_create(self, cls, name: str, labels: Dict, **kwargs):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            labels, routed = self._admit(name, labels)
            if routed:
                key = (name, _label_key(labels))
                instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels, **kwargs)
                self._instruments[key] = instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"{name}{dict(labels)} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def gauge_fn(self, name: str, fn: Callable[[], float], **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            labels, routed = self._admit(name, labels)
            if routed:
                key = (name, _label_key(labels))
                instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Gauge(name, labels, fn=fn)
            self._instruments[key] = instrument
        else:
            # Re-registration rebinds the callback: a rebuilt component
            # (e.g. a node recovered from WAL replay) must not leave the
            # gauge reading its dead predecessor's state.
            instrument._fn = fn
        return instrument

    def histogram(self, name: str, growth: float = 1.04,
                  min_value: float = 1e-3, **labels) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, growth=growth, min_value=min_value
        )

    def series(self, name: str, window: int = BoundedSeries.WINDOW,
               **labels) -> BoundedSeries:
        """A bounded, histogram-backed replacement for a raw stats list."""
        return BoundedSeries(self.histogram(name, **labels), window=window)

    def timeseries(self, name: str, window_us: float = 1e6, **labels):
        from repro.obs.timeseries import TimeSeries

        return self._get_or_create(
            TimeSeries, name, labels, window_us=window_us
        )

    # -- introspection -----------------------------------------------------

    def get(self, name: str, **labels) -> Optional[Instrument]:
        return self._instruments.get((name, _label_key(labels)))

    def find(self, name: str) -> List[Instrument]:
        """Every labeled variant registered under ``name``."""
        return [
            inst for (n, _), inst in sorted(self._instruments.items())
            if n == name
        ]

    def instruments(self) -> List[Instrument]:
        return [inst for _, inst in sorted(self._instruments.items())]

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (callback gauges are unaffected)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> Dict:
        """The whole registry as a JSON-able dict."""
        return {"instruments": [i.describe() for i in self.instruments()]}

    # -- cross-process merge -----------------------------------------------

    def state(self) -> List[Dict]:
        """Every instrument as a picklable, callback-free record.

        The parallel engine ships these over the worker pipes: callback
        gauges are sampled at capture time (deterministic given the
        worker's simulated state), histograms carry their sparse bucket
        counts, and records are emitted in sorted instrument order so the
        stream itself is deterministic.
        """
        out: List[Dict] = []
        for inst in self.instruments():
            rec: Dict = {
                "name": inst.name,
                "labels": dict(inst.labels),
                "kind": inst.kind,
            }
            if isinstance(inst, Counter):
                rec["value"] = inst.value
            elif isinstance(inst, Histogram):
                rec.update(
                    growth=inst.growth,
                    min_value=inst.min_value,
                    max_value=inst.max_value,
                    counts={int(k): int(v) for k, v in inst._counts.items()},
                    count=inst._count,
                    sum=inst._sum,
                    min=inst._min,
                    max=inst._max,
                )
            elif isinstance(inst, Gauge):
                rec["value"] = inst.value  # samples fn-backed gauges
            else:
                from repro.obs.timeseries import TimeSeries

                if isinstance(inst, TimeSeries):
                    rec.update(
                        window_us=inst.window_us,
                        windows={
                            int(k): float(v)
                            for k, v in inst._windows.items()
                        },
                        total=inst.total,
                    )
                else:  # pragma: no cover - no other kinds exist today
                    rec["payload"] = inst.payload()
            out.append(rec)
        return out

    def merge_state(self, records: Iterable[Dict]) -> None:
        """Fold one :meth:`state` capture into this registry.

        Folding captures one at a time rounds float sums once per fold;
        use :meth:`merge_states` when combining several captures — it
        folds each instrument with a *single* ``math.fsum`` pass, which
        is what makes the merge exactly permutation-independent.
        """
        self.merge_states([records])

    def merge_states(self, states: Iterable[Iterable[Dict]]) -> None:
        """Fold any number of :meth:`state` captures, order-independently.

        Records are grouped per instrument across every capture and each
        group folds in one pass: counters and histogram/timeseries float
        sums reduce with a single ``math.fsum`` (correctly rounded over
        the whole multiset, so any permutation of the captures produces
        bit-identical results), bucket/window counts add per sorted key,
        and min/max fold.  Plain gauges take the group's last capture
        (same-name gauges from disjoint shards carry disjoint labels, so
        overwrite order never matters in practice); fn-backed local
        gauges are left alone so they keep sampling live state.
        """
        grouped: Dict[tuple, List[Dict]] = {}
        for state in states:
            for rec in state:
                key = (rec["name"], _label_key(dict(rec["labels"])),
                       rec["kind"])
                grouped.setdefault(key, []).append(rec)
        for key in sorted(grouped, key=repr):
            recs = grouped[key]
            rec = recs[0]
            labels = dict(rec["labels"])
            kind = rec["kind"]
            if kind == "counter":
                self.counter(rec["name"], **labels).inc(
                    math.fsum(r["value"] for r in recs)
                )
            elif kind == "histogram":
                hist = self.histogram(
                    rec["name"], growth=rec["growth"],
                    min_value=rec["min_value"], **labels
                )
                for idx in sorted({i for r in recs for i in r["counts"]}):
                    hist._counts[idx] = hist._counts.get(idx, 0) + sum(
                        r["counts"].get(idx, 0) for r in recs
                    )
                hist._count += sum(r["count"] for r in recs)
                hist._sum = math.fsum(
                    [hist._sum] + [r["sum"] for r in recs]
                )
                hist._min = min([hist._min] + [r["min"] for r in recs])
                hist._max = max([hist._max] + [r["max"] for r in recs])
            elif kind == "gauge":
                gauge = self.gauge(rec["name"], **labels)
                if gauge._fn is None:
                    gauge.set(recs[-1]["value"])
            elif kind == "timeseries":
                series = self.timeseries(
                    rec["name"], window_us=rec["window_us"], **labels
                )
                for idx in sorted({i for r in recs for i in r["windows"]}):
                    series._windows[idx] = math.fsum(
                        [series._windows.get(idx, 0.0)]
                        + [r["windows"].get(idx, 0.0) for r in recs]
                    )
                series.total = math.fsum(
                    [series.total] + [r["total"] for r in recs]
                )
            else:  # pragma: no cover - no other kinds exist today
                raise ValueError(f"cannot merge instrument kind {kind!r}")
