"""Unified write/space/read amplification accounting.

The repo measures amplification in three places that grew up separately:
the FTL counts physical NAND bytes per host byte
(:class:`repro.csd.ftl.FTLStats`), the LSM baseline counts compaction
rewrites (:class:`repro.baselines.lsm.LSMStats`), and the tracer counts
read fan-out per consolidation.  :class:`AmplificationAccountant` gives
them one home: the three ratios below are *the* definitions, every
legacy ``write_amplification`` accessor delegates to them, and an
accountant instance exports them as ``storage.amp.write|space|read``
gauges in whatever :class:`~repro.obs.metrics.MetricsRegistry` owns the
run.

The accountant is deliberately lazy: nothing registers these gauges at
store construction time (the perf-harness fingerprints hash every
instrument in a registry, and the default single-level path must stay
byte-identical to the pre-policy code).  Benchmarks, the compaction CLI,
and tests create accountants explicitly.
"""

from __future__ import annotations

from typing import Callable, Optional

#: Metric names the accountant owns.
WRITE_AMP_GAUGE = "storage.amp.write"
SPACE_AMP_GAUGE = "storage.amp.space"
READ_AMP_GAUGE = "storage.amp.read"


def write_amp(user_bytes: float, physical_bytes: float) -> float:
    """Physical bytes written per user byte (1.0 when nothing written)."""
    if user_bytes <= 0:
        return 1.0
    return physical_bytes / user_bytes


def space_amp(live_bytes: float, stored_bytes: float) -> float:
    """Stored bytes per live user byte (1.0 when nothing is live)."""
    if live_bytes <= 0:
        return 1.0
    return stored_bytes / live_bytes


def read_amp(user_reads: float, device_reads: float) -> float:
    """Device reads per user-visible read (1.0 when no reads happened)."""
    if user_reads <= 0:
        return 1.0
    return device_reads / user_reads


class AmplificationAccountant:
    """Export WA/SA/RA as registry gauges from caller-supplied sources.

    Every source is a zero-argument callable returning the current total,
    so the gauges always reflect live state without the accountant having
    to observe individual operations.  Sources left ``None`` skip their
    gauge (an FTL knows nothing about read fan-out, a policy benchmark
    may not track space).
    """

    def __init__(
        self,
        metrics,
        *,
        user_write_bytes: Optional[Callable[[], float]] = None,
        physical_write_bytes: Optional[Callable[[], float]] = None,
        live_bytes: Optional[Callable[[], float]] = None,
        stored_bytes: Optional[Callable[[], float]] = None,
        user_reads: Optional[Callable[[], float]] = None,
        device_reads: Optional[Callable[[], float]] = None,
        **labels,
    ) -> None:
        self.metrics = metrics
        self._user_write_bytes = user_write_bytes
        self._physical_write_bytes = physical_write_bytes
        self._live_bytes = live_bytes
        self._stored_bytes = stored_bytes
        self._user_reads = user_reads
        self._device_reads = device_reads
        if user_write_bytes is not None and physical_write_bytes is not None:
            metrics.gauge_fn(WRITE_AMP_GAUGE, self.write_amplification, **labels)
        if live_bytes is not None and stored_bytes is not None:
            metrics.gauge_fn(SPACE_AMP_GAUGE, self.space_amplification, **labels)
        if user_reads is not None and device_reads is not None:
            metrics.gauge_fn(READ_AMP_GAUGE, self.read_amplification, **labels)

    # -- the three ratios ---------------------------------------------------

    def write_amplification(self) -> float:
        return write_amp(self._user_write_bytes(), self._physical_write_bytes())

    def space_amplification(self) -> float:
        return space_amp(self._live_bytes(), self._stored_bytes())

    def read_amplification(self) -> float:
        return read_amp(self._user_reads(), self._device_reads())


def for_ftl(stats, metrics, **labels) -> AmplificationAccountant:
    """Bind an accountant to :class:`repro.csd.ftl.FTLStats`.

    ``storage.amp.write`` then reports exactly what the legacy
    ``stats.write_amplification`` accessor reports (NAND bytes per host
    byte, GC relocation included).
    """
    return AmplificationAccountant(
        metrics,
        user_write_bytes=lambda: stats.host_written_bytes,
        physical_write_bytes=lambda: stats.nand_written_bytes,
        **labels,
    )


def for_lsm(stats, metrics, **labels) -> AmplificationAccountant:
    """Bind an accountant to :class:`repro.baselines.lsm.LSMStats`."""
    return AmplificationAccountant(
        metrics,
        user_write_bytes=lambda: stats.user_write_bytes,
        physical_write_bytes=lambda: (
            stats.user_write_bytes + stats.compaction_write_bytes
        ),
        **labels,
    )
