"""Unified observability for the PolarStore reproduction.

The simulator's evaluation story (Figs 7-16) is entirely about where
simulated microseconds and real bytes go: redo commit latency, GC write
amplification, per-layer compression decisions, tail latency.  This
package gives every subsystem one way to record those facts:

``repro.obs.metrics``
    :class:`MetricsRegistry` with :class:`Counter`, :class:`Gauge`, and a
    fixed-memory log-bucketed :class:`Histogram` (mergeable, p50/p95/p99),
    all keyed by name + labels, plus the list-compatible
    :class:`BoundedSeries` that bounds memory on long runs.

``repro.obs.tracing``
    An I/O :class:`Tracer` that threads a span context through one
    request's journey (buffer-pool miss -> storage node -> compression
    selector -> CSD device -> FTL -> NAND) and charges each layer's
    simulated microseconds to a named span.  Exclusive span times within
    one trace sum exactly to the request's end-to-end latency.

``repro.obs.timeseries``
    :class:`TimeSeries`: counters sliced over ``SimClock`` windows for
    throughput-over-time curves.

``repro.obs.export``
    JSON and Prometheus text-format exporters, backing the
    ``python -m repro metrics`` CLI command.

``repro.obs.events``
    The flight recorder: a bounded, sampled, deterministic ring of
    typed events (io, gc, commit, migration, fault, codec, scrub, db,
    slo) stamped with simulated time; JSONL + binary dumps behind
    ``python -m repro events``.

``repro.obs.slo``
    Declarative SLO specs (latency percentiles, error budgets, burn
    rates, thresholds, invariants) and the one :class:`SLOEvaluator`
    every harness's pass/fail verdict flows through.

``repro.obs.scenarios`` / ``repro.obs.dash`` / ``repro.obs.report``
    Observed scenario runners, the live terminal dashboard
    (``python -m repro dash``), and the byte-deterministic static
    HTML report.
"""

from repro.obs.metrics import (
    BoundedSeries,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeseries import TimeSeries
from repro.obs.tracing import Span, Trace, Tracer
from repro.obs.export import to_json, to_prometheus
from repro.obs.events import FlightRecorder, RecordedEvent, recorder_active
from repro.obs.slo import (
    BurnRateSLO,
    ErrorBudgetSLO,
    InvariantSLO,
    LatencySLO,
    SLOEvaluator,
    SLOReport,
    SLOStatus,
    ThresholdSLO,
)

__all__ = [
    "BoundedSeries",
    "BurnRateSLO",
    "Counter",
    "ErrorBudgetSLO",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InvariantSLO",
    "LatencySLO",
    "MetricsRegistry",
    "RecordedEvent",
    "SLOEvaluator",
    "SLOReport",
    "SLOStatus",
    "Span",
    "ThresholdSLO",
    "TimeSeries",
    "Trace",
    "Tracer",
    "recorder_active",
    "to_json",
    "to_prometheus",
]
