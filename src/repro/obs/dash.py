"""Live terminal dashboard over the observability plane.

``python -m repro dash <scenario>`` runs an observed scenario
(:mod:`repro.obs.scenarios`) and redraws one compact frame per
evaluator tick: device queue depths and utilization, storage latency
percentiles, compression ratio, migration progress, chaos repair
counters, the flight-recorder channel mix, and every SLO with a
burn-rate sparkline of its history.

The renderer is deliberately split from the terminal loop:
:func:`collect_stats` produces a plain, deterministically-ordered dict
from the run's registries (the HTML report reuses it), and
:func:`render_frame` turns that dict into text.  Both are pure reads —
rendering a frame never creates an instrument or perturbs the run.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry
from repro.obs.scenarios import ObservedRun, run_observed
from repro.obs.slo import SLO

#: Eight-level bar glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render ``values`` as a fixed-width unicode sparkline.

    The last ``width`` values are shown; a flat series renders as the
    lowest bar so that "no variation" and "no data" look different.
    """
    tail = [float(v) for v in values][-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(tail)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, int((v - lo) / span * len(_SPARK)))]
        for v in tail
    )


# ---------------------------------------------------------------------------
# stats collection (pure reads, deterministic ordering)
# ---------------------------------------------------------------------------


def _merged_hist(
    registries: Sequence[MetricsRegistry], name: str
) -> Optional[Histogram]:
    return SLO._merged_histogram(registries, name)


def _sum_values(registries: Sequence[MetricsRegistry], name: str) -> float:
    total = 0.0
    for registry in registries:
        for inst in registry.find(name):
            total += float(getattr(inst, "value", 0.0))
    return total


def _resource_rows(
    registries: Sequence[MetricsRegistry],
) -> List[Dict[str, object]]:
    """One row per resource name: depth summed, utilization maxed
    (shards duplicate device names; the hottest replica is the story)."""
    rows: Dict[str, Dict[str, float]] = {}
    for metric, field_name in (
        ("engine.resource.queue_depth", "depth"),
        ("engine.resource.utilization", "util"),
    ):
        for registry in registries:
            for inst in registry.find(metric):
                if not isinstance(inst, Gauge):
                    continue
                key = inst.labels.get("resource", "?")
                row = rows.setdefault(key, {"depth": 0.0, "util": 0.0})
                if field_name == "depth":
                    row["depth"] += inst.value
                else:
                    row["util"] = max(row["util"], inst.value)
    return [
        {"resource": name, "depth": rows[name]["depth"],
         "util": rows[name]["util"]}
        for name in sorted(rows)
    ]


def collect_stats(run: ObservedRun) -> Dict[str, object]:
    """Everything one frame (or the HTML report) shows, as plain data."""
    regs = run.registries
    latencies = {}
    for metric in (
        "storage.page_write_us",
        "storage.page_read_us",
        "storage.redo_commit_us",
        "cluster.migration.chunk_us",
    ):
        hist = _merged_hist(regs, metric)
        if hist is None or hist.count == 0:
            continue
        latencies[metric] = {
            "count": hist.count,
            "p50": round(hist.percentile(50), 1),
            "p99": round(hist.percentile(99), 1),
        }
    logical = _sum_values(regs, "storage.logical_used_bytes")
    physical = _sum_values(regs, "storage.physical_used_bytes")
    migration = {
        key.rsplit(".", 1)[1]: int(_sum_values(regs, key))
        for key in (
            "cluster.migration.tasks",
            "cluster.migration.pages",
            "cluster.migration.catchup_pages",
        )
        if _sum_values(regs, key) > 0
    }
    chaos = {
        key.rsplit(".", 1)[1]: int(_sum_values(regs, key))
        for key in (
            "chaos.injected",
            "chaos.detected",
            "chaos.repaired",
            "chaos.unrepairable",
        )
        if _sum_values(regs, key) > 0
    }
    slos = []
    for name in sorted(run.evaluator.last):
        status = run.evaluator.last[name]
        slos.append({
            "name": name,
            "ok": status.ok,
            "value": round(status.value, 3),
            "target": round(status.target, 3),
            "history": [
                round(v, 3) for v in run.evaluator.sparkline_values(name)
            ],
        })
    return {
        "scenario": run.name,
        "seed": run.seed,
        "now_us": round(run.now_us, 3),
        "resources": _resource_rows(regs),
        "latencies": latencies,
        "compression_ratio": (
            round(logical / physical, 3) if physical > 0 else 0.0
        ),
        "migration": migration,
        "chaos": chaos,
        "channels": run.recorder.summary(),
        "slos": slos,
        "alerts": run.evaluator.alerts,
        "passed": all(s["ok"] for s in slos) if slos else True,
    }


# ---------------------------------------------------------------------------
# frame rendering
# ---------------------------------------------------------------------------


def render_frame(run: ObservedRun, width: int = 78) -> str:
    """One full dashboard frame as plain text (no ANSI)."""
    stats = collect_stats(run)
    bar = "─" * width
    lines = [
        f"repro dash · {stats['scenario']} · seed {stats['seed']} "
        f"· t={stats['now_us'] / 1e3:.1f}ms",
        bar,
    ]
    if stats["resources"]:
        lines.append("devices              depth  util")
        for row in stats["resources"][:10]:
            gauge = "█" * int(round(row["util"] * 10))
            lines.append(
                f"  {row['resource']:<18} {row['depth']:>5.0f}  "
                f"{row['util']:>5.2f} {gauge}"
            )
    if stats["latencies"]:
        lines.append("latency (us)                 n      p50      p99")
        for metric, row in sorted(stats["latencies"].items()):
            short = metric.split(".", 1)[1]
            lines.append(
                f"  {short:<24} {row['count']:>6} {row['p50']:>8.1f} "
                f"{row['p99']:>8.1f}"
            )
    summary = [f"compression ratio {stats['compression_ratio']:.2f}x"]
    if stats["migration"]:
        summary.append(
            "migration " + " ".join(
                f"{k}={v}" for k, v in sorted(stats["migration"].items())
            )
        )
    if stats["chaos"]:
        summary.append(
            "chaos " + " ".join(
                f"{k}={v}" for k, v in sorted(stats["chaos"].items())
            )
        )
    lines.append(" · ".join(summary))
    if stats["channels"]:
        lines.append("events " + " ".join(
            f"{ch}={row['emitted']}"
            for ch, row in stats["channels"].items()
        ))
    if stats["slos"]:
        lines.append(bar)
        lines.append("SLOs")
        for slo in stats["slos"]:
            mark = "ok " if slo["ok"] else "ALR"
            lines.append(
                f"  [{mark}] {slo['name']:<28} {slo['value']:>12.3f} "
                f"/ {slo['target']:<12.3f} {sparkline(slo['history'])}"
            )
    lines.append(bar)
    verdict = "PASS" if stats["passed"] else "FAIL"
    lines.append(
        f"verdict {verdict} · alerts {stats['alerts']}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# terminal loop
# ---------------------------------------------------------------------------

#: Move home + clear to end of screen (frame sizes shrink and grow).
_ANSI_REFRESH = "\x1b[H\x1b[J"


def live_dash(
    scenario: str,
    seed: Optional[int] = None,
    quick: bool = True,
    interval_us: float = 2_000.0,
    ansi: bool = True,
    stream=None,
) -> ObservedRun:
    """Run a scenario, redrawing the dashboard on every evaluator tick."""
    out = stream if stream is not None else sys.stdout
    frames = {"count": 0}

    def on_tick(run: ObservedRun, now_us: float) -> None:
        frames["count"] += 1
        prefix = _ANSI_REFRESH if ansi else ""
        sep = "" if ansi else "\n"
        out.write(prefix + render_frame(run) + "\n" + sep)
        out.flush()

    run = run_observed(
        scenario, seed=seed, quick=quick,
        on_tick=on_tick, interval_us=interval_us,
    )
    # Always leave a final frame on screen, even for runs too short to
    # tick (the run-end tick fires this via on_tick already, so only
    # draw here if nothing was ever drawn).
    if frames["count"] == 0:
        out.write(render_frame(run) + "\n")
        out.flush()
    return run


__all__ = [
    "collect_stats",
    "live_dash",
    "render_frame",
    "sparkline",
]
