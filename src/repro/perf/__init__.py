"""repro.perf — the wall-clock fast path.

Everything else in this reproduction spends its effort on *simulated*
fidelity: latencies come from calibrated cost models and a deterministic
event kernel.  This package is about the other axis the ROADMAP names —
running "as fast as the hardware allows" in *wall-clock* terms — without
perturbing a single simulated microsecond or output byte.

Three mechanisms, all opt-in (see :class:`repro.api.config.PerfConfig`):

:mod:`repro.perf.memo`
    A content-addressed codec memo cache.  The codecs are pure functions,
    so identical inputs (replica-identical consolidation images, scrubber
    re-reads, migration copies, filler-tiled cluster pages) can skip the
    pure-Python compressor entirely and replay the recorded output.

:mod:`repro.perf.pool`
    A ``concurrent.futures`` codec pool with an ordered-completion
    facade: independent codec jobs (Algorithm 1's dual-codec evaluation,
    batch prefetches) run across cores while results are consumed in
    submission order, so the serial hot path sees byte-identical values.

:mod:`repro.perf.arena`
    A pooled page-buffer arena backing the zero-copy read/write plumbing
    (``memoryview`` slicing instead of per-page ``bytes`` copies).

:mod:`repro.perf.runtime` ties them together behind ``configure()`` /
``perf_active()``; :mod:`repro.perf.harness` measures the result
(``python -m repro perf``) and gates regressions in CI.
"""

from repro.perf.arena import PageArena
from repro.perf.memo import CodecMemoCache
from repro.perf.pool import CodecPool
from repro.perf.runtime import (
    PerfRuntime,
    configure,
    configure_from_env,
    deactivate,
    perf_active,
)

__all__ = [
    "CodecMemoCache",
    "CodecPool",
    "PageArena",
    "PerfRuntime",
    "configure",
    "configure_from_env",
    "deactivate",
    "perf_active",
]
