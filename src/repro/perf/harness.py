"""Wall-clock perf harness: pinned scenarios, serial/fast/parallel A/B/C.

Everything the simulator *reports* is simulated time; this module is the
one place that measures **wall-clock** time (``time.perf_counter``).
Each scenario runs twice in-process — once with the perf runtime
deactivated (serial reference) and once with it configured — and, with
``--workers N``, a third time across forked engine workers
(``repro.engine.parallel``).  The harness asserts all runs are
*equivalent*: identical output bytes, identical simulated timings,
identical metric streams.  The fast path and the worker fleet are only
allowed to change how long the host takes to compute the same answer.

Equivalence is checked with a scenario *fingerprint*: a SHA-256 over the
scenario's own outputs (transaction counts, simulated latencies, chaos
report, experiment rows) plus the full metrics snapshot with ``perf.*``
instruments filtered out (those exist only when the fast path is on).
The metrics snapshot folds in every simulated duration, device byte
count, and checksum-driven counter in the stack, so any divergence —
a wrong byte, a perturbed simulated microsecond — flips the digest.

``python -m repro perf`` drives this module and writes the scoreboard
to ``BENCH_wallclock.json`` at the repo root; ``--check`` replays the
scenarios and fails (exit 1) when a speedup regresses by more than the
tolerance vs the committed baseline, which is the CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import resource
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.engine.parallel import ParallelEngineGroup, workers_from_env
from repro.obs import events as obs_events
from repro.obs.slo import InvariantSLO, SLOEvaluator, ThresholdSLO
from repro.perf.pool import default_workers
from repro.perf.runtime import PerfRuntime, configure, deactivate

#: Committed baseline / default output artifact, at the repo root.
DEFAULT_REPORT = "BENCH_wallclock.json"

#: ``--check`` fails when a scenario's speedup drops below
#: ``baseline * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.30

#: ``--check`` floor for the parallel leg's speedup on the scenarios in
#: :data:`PARALLEL_GATED_SCENARIOS`, applied only when the fresh run had
#: ``workers >= 2`` *and* the host actually has 2+ cores — on a 1-core
#: runner the honest measurement is ~1.0x and the gate would only test
#: the scheduler, not the code.
PARALLEL_SPEEDUP_FLOOR = 1.5

#: Scenarios whose parallel leg contains genuinely partitionable work
#: (independent engine universes), so wall-clock speedup is gated, not
#: just byte-identity.
PARALLEL_GATED_SCENARIOS = ("cluster_ingest",)


@dataclass
class ScenarioRun:
    """One execution of one scenario in one mode (serial or perf)."""

    fingerprint: str
    pages: int
    sim_us: float
    wall_s: float
    detail: Dict[str, object] = field(default_factory=dict)


def _metrics_digest(registry) -> str:
    """Digest every non-perf instrument: sim timings, bytes, counters.

    ``perf.*`` gauges are excluded because they exist only when the
    runtime is active — they describe the fast path itself, not the
    simulated universe, and are reported separately in the scoreboard.
    """
    instruments = [
        inst.describe()
        for inst in registry.instruments()
        if not inst.name.startswith("perf.")
    ]
    blob = json.dumps(instruments, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _page_ops(registry) -> int:
    """Pages moved through the store: committed writes + served reads."""
    return sum(
        hist.count
        for name in ("storage.page_write_us", "storage.page_read_us")
        for hist in registry.find(name)
    )


# ---------------------------------------------------------------------------
# scenarios — pinned seeds, fixed workload shapes
# ---------------------------------------------------------------------------


def _offload(fn: Callable[[], ScenarioRun]) -> ScenarioRun:
    """Run a single-universe scenario in one forked engine worker.

    A scenario with one engine heap cannot be partitioned below engine
    granularity, so its parallel leg occupies one worker of the fleet.
    The leg still proves what matters: the fork/pipe transport and the
    worker-side execution reproduce the serial fingerprint byte for
    byte (the child inherits the parent's rewound node counter and
    deactivated perf/recorder state across the fork).
    """
    with ParallelEngineGroup(1, lambda wid: (lambda op, payload: fn())) as group:
        group.workers[0].request("run")
        return group.workers[0].next_reply()


def scenario_sysbench8(quick: bool = False, workers: int = 1) -> ScenarioRun:
    """8-client sysbench read_write on one replicated volume.

    The headline scenario: the bulk load's checkpoint consolidates every
    dirty page on all three replicas with identical page images, which
    is exactly the duplicate work the codec memo collapses.
    """
    if workers > 1:
        return _offload(lambda: scenario_sysbench8(quick))
    from repro.api import ReproConfig, build_db
    from repro.workloads.sysbench import prepare_table, run_sysbench

    rows = 64 if quick else 320
    txns = 24 if quick else 96
    db = build_db(ReproConfig())
    loaded_us = prepare_table(db, rows=rows, seed=7)
    result = run_sysbench(
        db,
        "read_write",
        duration_s=4.0,
        threads=8,
        key_range=rows,
        start_us=loaded_us,
        max_transactions=txns,
        seed=7,
    )
    store = db.store
    # Post-run housekeeping, same as production: checkpoint the dirty
    # tail, then run the background integrity scrub.  The scrub re-reads
    # every page on every replica — three decompressions of identical
    # payloads per page — which is the duplicate work the memo exists
    # to collapse.
    end_us = db.checkpoint(loaded_us + result.elapsed_s * 1e6)
    scrubbed_us = store.scrub(end_us)
    # Byte-identity read-back: hash the materialized contents of a fixed
    # sample of live pages at a fixed simulated instant.
    digest = hashlib.sha256()
    now = scrubbed_us + 1e6
    pages = sorted(pn for pn, _ in store.leader.index.items())
    for page_no in pages[:: max(1, len(pages) // 24)]:
        read = store.read_page(now, page_no)
        now = read.done_us
        digest.update(page_no.to_bytes(8, "little"))
        digest.update(bytes(read.data))
    digest.update(_metrics_digest(store.metrics).encode())
    digest.update(
        json.dumps(
            {
                "loaded_us": loaded_us,
                "end_us": end_us,
                "scrubbed_us": scrubbed_us,
                "transactions": result.transactions,
                "elapsed_s": result.elapsed_s,
                "mean_us": result.latency.mean_us,
                "p95_us": result.latency.p95_us,
            },
            sort_keys=True,
        ).encode()
    )
    return ScenarioRun(
        fingerprint=digest.hexdigest(),
        pages=_page_ops(store.metrics),
        sim_us=now,
        wall_s=0.0,
        detail={"transactions": result.transactions, "rows": rows},
    )


def scenario_chaos_smoke(quick: bool = False, workers: int = 1) -> ScenarioRun:
    """Seeded fault-injection smoke: corruption must not perturb results.

    Exercises the memo's verified-only discipline end to end — bit
    flips, torn and misdirected writes flow through the same read path
    the memo serves, and the rendered invariant report must match the
    serial run byte for byte.
    """
    if workers > 1:
        return _offload(lambda: scenario_chaos_smoke(quick))
    from repro.chaos.harness import run_chaos

    ops = 80 if quick else 160
    report = run_chaos(
        seed=42,
        ops=ops,
        pages=32,
        scrub_every=40,
        min_data_faults=2,
    )
    digest = hashlib.sha256(report.render().encode())
    digest.update(_metrics_digest(report.metrics).encode())
    if not report.passed:
        raise AssertionError(
            f"chaos invariants violated: {report.violations}"
        )
    return ScenarioRun(
        fingerprint=digest.hexdigest(),
        pages=report.writes + report.reads,
        sim_us=0.0,
        wall_s=0.0,
        detail={
            "ops": ops,
            "injected_data_faults": report.injected_data_faults,
        },
    )


def scenario_cluster_ingest(
    quick: bool = False, workers: int = 1
) -> ScenarioRun:
    """Skewed-ingest + live migration on the sharded runtime (Fig 10/11
    shape, smaller fleet): cross-volume duplicate page images during
    migration catch-up are the memo's cluster-level win.

    ``workers > 1`` fans the two independent scheduler-leg fleets across
    worker processes (``leg_workers``) — the partitionable half of the
    scenario, and the one whose parallel speedup the harness gates."""
    from repro.bench.cluster_fig import run_fig10_11

    shards = 2 if quick else 3
    chunks = 4 if quick else 8
    with tempfile.TemporaryDirectory() as scratch:
        result = run_fig10_11(
            out_dir=scratch,
            shards=shards,
            chunks=chunks,
            seed=0,
            quiet=True,
            leg_workers=workers,
        )
    blob = json.dumps(result.to_dict(), sort_keys=True, default=repr)
    rows = {row[0]: dict(zip(result.columns, row)) for row in result.rows}
    moved = sum(
        int(r["moved_pages"]) + int(r["catchup_pages"]) for r in rows.values()
    )
    return ScenarioRun(
        fingerprint=hashlib.sha256(blob.encode()).hexdigest(),
        pages=moved,
        sim_us=max(float(r["makespan_ms"]) * 1e3 for r in rows.values()),
        wall_s=0.0,
        detail={"shards": shards, "chunks": chunks, "moved_pages": moved},
    )


SCENARIOS: Dict[str, Callable[..., ScenarioRun]] = {
    "sysbench8": scenario_sysbench8,
    "chaos_smoke": scenario_chaos_smoke,
    "cluster_ingest": scenario_cluster_ingest,
}


# ---------------------------------------------------------------------------
# A/B/C driver
# ---------------------------------------------------------------------------


def _timed(
    fn: Callable[..., ScenarioRun], quick: bool, workers: int = 1
) -> ScenarioRun:
    # Rewind the process-global node-name counter so every run of a
    # scenario builds "node-0/1/2..." — metric labels must line up for
    # the fingerprints to be comparable.  The reset happens before any
    # fork, so worker children inherit the rewound counter too.
    import itertools

    from repro.storage import store as store_mod

    store_mod._node_counter = itertools.count()
    gc.collect()
    start = time.perf_counter()
    run = fn(quick, workers=workers) if workers > 1 else fn(quick)
    run.wall_s = time.perf_counter() - start
    return run


def _peak_rss_bytes() -> int:
    """Peak resident set, harness process + reaped pool workers."""
    self_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kib + child_kib) * 1024


def run_harness(
    scenario_names: Optional[List[str]] = None,
    quick: bool = False,
    perf_spec: Optional[Dict[str, object]] = None,
    verbose: bool = True,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """Run each scenario serial/fast (and parallel); build the scoreboard.

    ``perf_spec`` overrides the fast-path shape (keys: ``pool_workers``,
    ``pool_kind``, ``memo_capacity_bytes``); the default is a process
    pool sized to the host plus a 64 MiB memo.  ``workers >= 2`` adds the
    third leg: the scenario re-runs across forked engine workers
    (``repro.engine.parallel``) with the perf runtime off, and its
    fingerprint must equal the serial reference byte for byte.  The
    default comes from ``REPRO_WORKERS`` (unset → no parallel leg).

    A scenario that raises does not abort the harness: the failure is
    contained to its scoreboard row (``"error"`` key, ``identical:
    False``) and the remaining scenarios still run, so one broken
    scenario reports alongside — not instead of — the others.
    """
    names = scenario_names or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise KeyError(
            f"unknown scenario(s) {unknown}; options: {sorted(SCENARIOS)}"
        )
    if workers is None:
        workers = workers_from_env() or 1
    workers = max(1, int(workers))
    spec = {
        "pool_workers": default_workers(),
        "pool_kind": "process",
        "memo_capacity_bytes": 64 * 1024 * 1024,
    }
    spec.update(perf_spec or {})

    def say(msg: str) -> None:
        if verbose:
            print(msg, file=sys.stderr)

    scoreboard: Dict[str, object] = {
        "version": 2,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "perf_spec": dict(spec),
        "scenarios": {},
    }
    total_saved = 0.0
    for name in names:
        fn = SCENARIOS[name]
        try:
            say(f"[{name}] serial reference ...")
            deactivate()
            serial = _timed(fn, quick)
            say(f"[{name}] serial: {serial.wall_s:.3f}s wall, "
                f"{serial.pages} page ops")
            runtime = PerfRuntime(**spec)
            configure(runtime)
            # The fast leg runs with the flight recorder ACTIVE while the
            # serial leg ran with it off.  The fingerprints must still
            # match: that equality is the standing proof that
            # observability is sim-time- and byte-neutral (recorder state
            # never enters the metrics digest — its bookkeeping is plain
            # attributes, not registry instruments).
            recorder = obs_events.activate(
                obs_events.FlightRecorder(capacity=16384)
            )
            try:
                say(f"[{name}] fast path ({spec['pool_kind']} pool, "
                    f"{spec['pool_workers']} workers) ...")
                fast = _timed(fn, quick)
                stats = runtime.stats()
            finally:
                deactivate()
                obs_events.deactivate()
            parallel_block: Optional[Dict[str, object]] = None
            if workers > 1:
                # Third leg: forked engine workers, perf runtime off —
                # the same serial universe, computed elsewhere.
                say(f"[{name}] parallel ({workers} engine workers) ...")
                par = _timed(fn, quick, workers=workers)
                p_identical = par.fingerprint == serial.fingerprint
                p_speedup = (
                    serial.wall_s / par.wall_s if par.wall_s > 0 else 0.0
                )
                say(f"[{name}] parallel: {par.wall_s:.3f}s wall "
                    f"({p_speedup:.2f}x), identical={p_identical}")
                parallel_block = {
                    "identical": p_identical,
                    "wall_s": round(par.wall_s, 4),
                    "speedup": round(p_speedup, 3),
                }
        except Exception:
            tb = traceback.format_exc()
            deactivate()
            obs_events.deactivate()
            say(f"[{name}] ERROR:\n{tb}")
            scoreboard["scenarios"][name] = {
                "identical": False,
                "error": tb.strip().splitlines()[-1],
            }
            continue
        identical = fast.fingerprint == serial.fingerprint
        speedup = serial.wall_s / fast.wall_s if fast.wall_s > 0 else 0.0
        total_saved += stats.get("codec_calls_saved", 0)
        say(f"[{name}] fast  : {fast.wall_s:.3f}s wall "
            f"({speedup:.2f}x), identical={identical}, memo hit rate "
            f"{(stats.get('memo') or {}).get('hit_rate', 0.0):.3f}")
        row: Dict[str, object] = {
            "identical": identical,
            "serial_wall_s": round(serial.wall_s, 4),
            "perf_wall_s": round(fast.wall_s, 4),
            "speedup": round(speedup, 3),
            "pages": serial.pages,
            "pages_per_s_serial": round(serial.pages / serial.wall_s, 1)
            if serial.wall_s > 0 else 0.0,
            "pages_per_s_perf": round(fast.pages / fast.wall_s, 1)
            if fast.wall_s > 0 else 0.0,
            "sim_us": serial.sim_us,
            "codec_calls_saved": stats.get("codec_calls_saved", 0),
            "memo": stats.get("memo"),
            "pool": stats.get("pool"),
            "events_recorded": recorder.total_emitted,
            "workers": workers,
            "detail": serial.detail,
        }
        if parallel_block is not None:
            row["parallel"] = parallel_block
        scoreboard["scenarios"][name] = row
    scoreboard["codec_calls_saved_total"] = total_saved
    scoreboard["peak_rss_bytes"] = _peak_rss_bytes()
    return scoreboard


def write_report(scoreboard: Dict[str, object], path: str) -> str:
    with open(path, "w") as handle:
        json.dump(scoreboard, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def check_regression(
    scoreboard: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Compare a fresh scoreboard against the committed baseline.

    The gate is on *speedup* (fast vs serial on the same host in the
    same process), which normalizes away absolute machine speed; raw
    pages/sec are reported for humans but not gated.  When the fresh
    run carried a parallel leg, its byte-identity is an invariant and —
    for :data:`PARALLEL_GATED_SCENARIOS` on a multi-core host — its
    speedup must clear :data:`PARALLEL_SPEEDUP_FLOOR`.  A scenario that
    raised is itself a violation, reported alongside the rest.

    Every pass/fail decision is expressed as an SLO spec and routed
    through :class:`repro.obs.slo.SLOEvaluator` — the same evaluator
    that judges the chaos invariants and the live-scenario SLOs — so
    there is exactly one verdict engine in the tree.
    """
    evaluator = SLOEvaluator()
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = scoreboard.get("scenarios", {})
    cpu_count = int(scoreboard.get("cpu_count") or 1)
    for name, fresh in fresh_scenarios.items():
        if "error" in fresh:
            evaluator.add(InvariantSLO(
                f"perf.{name}.completed",
                lambda name=name, err=fresh["error"]: [
                    f"{name}: scenario raised: {err}"
                ],
                description="scenario runs to completion",
            ))
            continue
        parallel = fresh.get("parallel")
        if parallel is not None:
            if not parallel["identical"]:
                evaluator.add(InvariantSLO(
                    f"perf.{name}.parallel_identical",
                    lambda name=name: [
                        f"{name}: parallel-leg output DIVERGED "
                        f"from serial reference"
                    ],
                    description="parallel fingerprint equals serial",
                ))
            elif name in PARALLEL_GATED_SCENARIOS and cpu_count >= 2:
                evaluator.add(ThresholdSLO(
                    f"perf.{name}.parallel_speedup",
                    lambda parallel=parallel: float(parallel["speedup"]),
                    floor=PARALLEL_SPEEDUP_FLOOR,
                    message=lambda v, name=name: (
                        f"{name}: parallel speedup {v:.2f}x below the "
                        f"{PARALLEL_SPEEDUP_FLOOR:.1f}x floor on a "
                        f"{cpu_count}-core host"
                    ),
                ))
        if not fresh["identical"]:
            evaluator.add(InvariantSLO(
                f"perf.{name}.identical",
                lambda name=name: [
                    f"{name}: fast-path output DIVERGED "
                    f"from serial reference"
                ],
                description="fast-path fingerprint equals serial",
            ))
            continue
        base = base_scenarios.get(name)
        if base is None:
            continue  # new scenario: no baseline yet, nothing to gate
        floor = base["speedup"] * (1.0 - tolerance)
        evaluator.add(ThresholdSLO(
            f"perf.{name}.speedup",
            lambda fresh=fresh: float(fresh["speedup"]),
            floor=floor,
            message=lambda v, name=name, floor=floor, base=base: (
                f"{name}: speedup {v:.2f}x regressed "
                f"below {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x, "
                f"tolerance {tolerance:.0%})"
            ),
        ))
    missing = [n for n in base_scenarios if n not in fresh_scenarios]
    if missing:
        evaluator.add(InvariantSLO(
            "perf.coverage",
            lambda missing=tuple(missing): [
                f"{n}: scenario missing from fresh run" for n in missing
            ],
            description="every baseline scenario still runs",
        ))
    return evaluator.report(0.0).violations()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description="wall-clock A/B harness: serial vs perf fast path",
    )
    parser.add_argument(
        "--scenario", action="append", choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trimmed workload sizes for smoke/CI runs",
    )
    parser.add_argument(
        "--out", default=None,
        help=f"write the scoreboard JSON here (default: {DEFAULT_REPORT} "
             "at the repo root; '-' to skip writing)",
    )
    parser.add_argument(
        "--check", default=None, metavar="BASELINE",
        help="compare against this committed scoreboard and exit 1 on "
             f">{REGRESSION_TOLERANCE:.0%} speedup regression",
    )
    parser.add_argument(
        "--pool-workers", type=int, default=None,
        help="override pool size (0 disables the pool; default: auto)",
    )
    parser.add_argument(
        "--pool-kind", choices=("process", "thread", "serial"),
        default=None, help="override pool kind (default: process)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run a third leg across N forked engine workers and require "
             "its fingerprint to equal serial (default: $REPRO_WORKERS, "
             "else no parallel leg)",
    )
    args = parser.parse_args(argv)

    spec: Dict[str, object] = {}
    if args.pool_workers is not None:
        spec["pool_workers"] = args.pool_workers
    if args.pool_kind is not None:
        spec["pool_kind"] = args.pool_kind
    scoreboard = run_harness(
        scenario_names=args.scenario,
        quick=args.quick,
        perf_spec=spec or None,
        workers=args.workers,
    )
    diverged = [
        name
        for name, row in scoreboard["scenarios"].items()
        if "error" in row
        or not row["identical"]
        or not row.get("parallel", {"identical": True})["identical"]
    ]
    if args.check is not None:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_regression(scoreboard, baseline)
        for failure in failures:
            print(f"perf-regression: {failure}", file=sys.stderr)
        if not failures:
            print("perf check: all scenarios identical, speedups within "
                  f"{REGRESSION_TOLERANCE:.0%} of baseline")
        print(json.dumps(scoreboard, indent=2, sort_keys=True))
        return 1 if failures else 0
    out = args.out or DEFAULT_REPORT
    if out != "-":
        write_report(scoreboard, out)
        print(f"wrote {out}")
    print(json.dumps(scoreboard, indent=2, sort_keys=True))
    return 1 if diverged else 0


if __name__ == "__main__":
    sys.exit(main())
