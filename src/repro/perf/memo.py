"""Content-addressed codec memo cache.

The software codecs (:mod:`repro.compression`) are pure functions of their
input bytes, so any call whose input content has been seen before can be
answered from a recorded result instead of re-running the pure-Python
compressor (23–34 ms per 16 KiB page on one core).  The big repeat sources
in this system are structural, not accidental:

* every replica consolidates the *same* page image from the same redo
  records (a 3-replica checkpoint compresses each image three times);
* repair, resync, and scrubber re-reads materialize payloads the leader
  already produced;
* live migration copies pages whose images the source volume compressed
  moments earlier;
* cluster row pages tile their filler from the row value, so 4 KiB
  device blocks repeat across pages.

Keys are BLAKE2b-128 digests of the input content plus the codec name and
operation kind — the cache never compares stale pointers, only content.
Decompression entries are only written/read for payloads whose CRC has
been verified by the caller (``verified=True``): a bit-flipped payload
hashes to a different key and therefore *cannot* be served from the memo
(see ``tests/chaos/test_memo_chaos.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Tuple

#: Operation kinds (part of the cache key).
KIND_COMPRESS = "c"
KIND_DECOMPRESS = "d"
KIND_HW_LEN = "h"

_DIGEST_SIZE = 16


def content_key(kind: str, codec: str, data) -> Tuple[str, str, bytes]:
    """Cache key for one codec call: ``(kind, codec, blake2b(content))``.

    ``data`` may be ``bytes``, ``bytearray``, or ``memoryview`` — hashing
    reads the buffer without copying it.
    """
    digest = hashlib.blake2b(data, digest_size=_DIGEST_SIZE).digest()
    return (kind, codec, digest)


class CodecMemoCache:
    """Bounded LRU of codec results, charged by stored payload bytes.

    Values are ``(payload_bytes, crc32)`` tuples for compression entries
    (the CRC rides along so the write path can skip recomputing it),
    plain ``bytes`` for decompression entries, and ``int`` compressed
    lengths for the hardware-gzip sizing memo (charged a nominal size).
    """

    #: Charged bytes for an int-valued entry (hw length memo).
    _INT_CHARGE = 64

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"negative capacity {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._items: "OrderedDict[tuple, Tuple[object, int]]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # -- accessors ---------------------------------------------------------

    def get(self, key: tuple):
        entry = self._items.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return entry[0]

    def __len__(self) -> int:
        return len(self._items)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- mutation ----------------------------------------------------------

    def put(self, key: tuple, value) -> None:
        size = self._charge(value)
        if size > self.capacity_bytes:
            return  # never admit something larger than the whole cache
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= old[1]
        self._items[key] = (value, size)
        self._used += size
        self.insertions += 1
        while self._used > self.capacity_bytes:
            _, (_, victim_size) = self._items.popitem(last=False)
            self._used -= victim_size
            self.evictions += 1

    def clear(self) -> None:
        self._items.clear()
        self._used = 0

    @classmethod
    def _charge(cls, value) -> int:
        if isinstance(value, int):
            return cls._INT_CHARGE
        if isinstance(value, tuple):  # (payload, crc)
            return len(value[0]) + cls._INT_CHARGE
        return len(value)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "entries": len(self._items),
            "used_bytes": self._used,
            "capacity_bytes": self.capacity_bytes,
        }

    def reset_counters(self) -> None:
        self.hits = self.misses = self.insertions = self.evictions = 0


def memo_key_compress(codec: str, data) -> tuple:
    return content_key(KIND_COMPRESS, codec, data)


def memo_key_decompress(codec: str, payload) -> tuple:
    return content_key(KIND_DECOMPRESS, codec, payload)


def memo_key_hw_len(block) -> tuple:
    return content_key(KIND_HW_LEN, "hw-gzip", block)
