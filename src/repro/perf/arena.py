"""Pooled page-buffer arena for the zero-copy pipeline.

The read path assembles multi-block device payloads and the write path
pads compressed payloads to 4 KiB boundaries; both used to allocate a
fresh ``bytes`` object per page.  ``PageArena`` keeps a small free list
of reusable ``bytearray`` buffers sized for one database page so those
transient assemblies recycle memory instead of churning the allocator.

Usage discipline: a borrowed buffer is only valid until ``release`` (or
the next ``assemble`` on the same arena in loan-free code); callers that
retain data beyond the current operation must copy it out (the storage
layers already do — caches and device stores keep immutable ``bytes``).
The simulation is single-threaded at the Python level (the codec pool
runs in *separate processes*), so no locking is needed.
"""

from __future__ import annotations

from typing import List

from repro.common.units import DB_PAGE_SIZE


class PageArena:
    """Fixed-size free list of page-sized scratch buffers."""

    def __init__(self, slots: int = 8, buffer_bytes: int = DB_PAGE_SIZE) -> None:
        if slots < 1:
            raise ValueError(f"arena needs at least one slot, got {slots}")
        if buffer_bytes < 1:
            raise ValueError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self.slots = slots
        self.buffer_bytes = buffer_bytes
        self._free: List[bytearray] = []
        # Wall-clock accounting.
        self.borrows = 0
        self.reuses = 0
        self.allocations = 0

    def borrow(self, nbytes: int) -> bytearray:
        """A scratch buffer of exactly ``nbytes`` length.

        Buffers up to the arena's page size come from the free list
        (resized in place); larger requests are plain allocations.
        """
        self.borrows += 1
        if nbytes <= self.buffer_bytes and self._free:
            buf = self._free.pop()
            self.reuses += 1
            if len(buf) != nbytes:
                if len(buf) < nbytes:
                    buf.extend(b"\x00" * (nbytes - len(buf)))
                else:
                    del buf[nbytes:]
            return buf
        self.allocations += 1
        return bytearray(nbytes)

    def release(self, buf: bytearray) -> None:
        """Return a buffer to the free list (dropped when full/oversized)."""
        if len(self._free) < self.slots and len(buf) <= self.buffer_bytes:
            self._free.append(buf)

    @property
    def reuse_rate(self) -> float:
        return self.reuses / self.borrows if self.borrows else 0.0

    def stats(self) -> dict:
        return {
            "slots": self.slots,
            "borrows": self.borrows,
            "reuses": self.reuses,
            "allocations": self.allocations,
            "reuse_rate": round(self.reuse_rate, 6),
        }
