"""Parallel codec pool with an ordered-completion facade.

The pure-Python codecs are CPU-bound and hold the GIL, so genuine
parallelism needs processes; ``CodecPool`` wraps a
``concurrent.futures.ProcessPoolExecutor`` (``fork`` context where
available — the workers inherit the already-imported codec registry) with
a thread-based fallback for platforms without ``fork`` and a ``serial``
mode that computes inline (useful for A/B harness runs and as a safe
degradation when only one core exists).

Determinism contract
--------------------
Codec functions are pure: a worker process produces byte-for-byte the
same payload the caller would have produced inline.  The facade exposes
*futures consumed in submission order* (``PendingCodec.result()``), so no
completion-order nondeterminism can leak into the simulation: the serial
hot path blocks exactly where it would have computed the value itself,
and simulated time — which is charged from the cost models, never from
wall time — is untouched.  See ``tests/perf/test_golden_equivalence.py``.

What the pool actually parallelizes:

* Algorithm 1's dual-codec evaluation — lz4 and zstd compression of the
  same page are independent and run on two cores;
* batch prefetches (``warm_compress``/``warm_decompress``) — known
  upcoming inputs (scrub payload sweeps, migration chunk images) are
  compressed/decompressed ahead of the serial consumer, which then hits
  the memo cache;
* CRC-32 of each compressed payload, computed in the worker alongside
  the compression it belongs to.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import zlib
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple


def _codec_compress(codec_name: str, data: bytes) -> Tuple[bytes, int]:
    """Worker body: compress + CRC in one round trip."""
    from repro.compression.base import get_codec

    payload = get_codec(codec_name).compress(data)
    return payload, zlib.crc32(payload) & 0xFFFFFFFF


def _codec_decompress(codec_name: str, payload: bytes) -> bytes:
    from repro.compression.base import get_codec

    return get_codec(codec_name).decompress(payload)


class PendingCodec:
    """Handle for one submitted codec job; ``result()`` blocks until done.

    Wraps either a real future or an already-computed value (serial
    mode), so call sites never branch on the pool flavor.
    """

    __slots__ = ("_future", "_value")

    def __init__(self, future: Optional[Future] = None, value=None) -> None:
        self._future = future
        self._value = value

    def result(self):
        if self._future is not None:
            return self._future.result()
        return self._value


class CodecPool:
    """Executor-backed codec offload with lazy worker start."""

    def __init__(self, workers: int, kind: str = "process") -> None:
        if workers < 1:
            raise ValueError(f"pool needs at least one worker, got {workers}")
        if kind not in ("process", "thread", "serial"):
            raise ValueError(f"unknown pool kind {kind!r}")
        if kind == "process" and not _fork_available():
            kind = "thread"
        self.workers = workers
        self.kind = kind
        self._executor = None
        # Wall-clock accounting (reported via repro.obs gauges).
        self.submitted = 0
        self.completed = 0
        self.batches = 0
        self.max_in_flight = 0
        self._in_flight = 0

    # -- lifecycle ---------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None and self.kind != "serial":
            if self.kind == "process":
                ctx = multiprocessing.get_context("fork")
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=ctx
                )
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            atexit.register(self.shutdown)
        return self._executor

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- submission --------------------------------------------------------

    def _submit(self, fn: Callable, *args) -> PendingCodec:
        self.submitted += 1
        if self.kind == "serial":
            self.completed += 1
            return PendingCodec(value=fn(*args))
        executor = self._ensure_executor()
        self._in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self._in_flight)
        future = executor.submit(fn, *args)
        future.add_done_callback(self._on_done)
        return PendingCodec(future=future)

    def _on_done(self, _future) -> None:
        self._in_flight -= 1
        self.completed += 1

    def submit_compress(self, codec_name: str, data: bytes) -> PendingCodec:
        """Compress ``data``; resolves to ``(payload, crc32)``."""
        return self._submit(_codec_compress, codec_name, bytes(data))

    def submit_decompress(self, codec_name: str, payload: bytes) -> PendingCodec:
        return self._submit(_codec_decompress, codec_name, bytes(payload))

    def map_compress(
        self, jobs: Sequence[Tuple[str, bytes]]
    ) -> List[Tuple[bytes, int]]:
        """Ordered batch compression: results match ``jobs`` order."""
        self.batches += 1
        pending = [self.submit_compress(codec, data) for codec, data in jobs]
        return [p.result() for p in pending]

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "workers": self.workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "batches": self.batches,
            "max_in_flight": self.max_in_flight,
        }


def _fork_available() -> bool:
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def default_workers() -> int:
    """Pool size for ``pool_workers=0`` auto mode: one worker per core
    beyond the simulator's own, capped at 4 (codec jobs come at most a
    handful at a time)."""
    return max(1, min(4, (os.cpu_count() or 1) - 1) or 1)
