"""The active wall-clock fast path: memo + pool + arena behind one handle.

A :class:`PerfRuntime` is installed process-wide with :func:`configure`
(or :func:`configure_from_env` for CLI entry points honouring the
``REPRO_PERF`` variable) and consulted by the hot paths through
:func:`perf_active`.  When nothing is configured every call site falls
back to its original inline behavior, so the perf layer is strictly
opt-in — tier-1 tests and legacy entry points run exactly the code they
always ran.

Why process-wide instead of per-volume: the memo cache is *content*-
addressed over pure functions, so sharing it across volumes is not just
safe but the point — a cluster migration compresses page images the
source volume already compressed, and only a shared cache can see that.
Each volume still exports the runtime's counters through its own
:class:`~repro.obs.metrics.MetricsRegistry` via :meth:`PerfRuntime
.bind_metrics` (callback gauges, so snapshots always read live values).

Determinism: nothing here can change a simulated timestamp or an output
byte.  Memo values are recorded outputs of pure codec calls; pool results
are consumed in submission order; simulated CPU cost is charged from
:mod:`repro.compression.cost` regardless of where (or whether) the codec
actually ran.  ``tests/perf/test_golden_equivalence.py`` locks this in.
"""

from __future__ import annotations

import os
import zlib
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.common.units import MiB
from repro.perf.arena import PageArena
from repro.perf.memo import (
    CodecMemoCache,
    memo_key_compress,
    memo_key_decompress,
    memo_key_hw_len,
)
from repro.perf.pool import CodecPool, PendingCodec, default_workers

#: Default memo capacity when enabled without an explicit size.
DEFAULT_MEMO_BYTES = 64 * MiB


def _get_codec(name: str):
    # Lazy: repro.compression's selector imports this module, so a
    # module-level import here would be circular when perf loads first.
    from repro.compression.base import get_codec

    return get_codec(name)


class PerfRuntime:
    """One configured fast path: codec memo, codec pool, buffer arena."""

    def __init__(
        self,
        pool_workers: int = 0,
        pool_kind: str = "process",
        memo_capacity_bytes: int = DEFAULT_MEMO_BYTES,
        zero_copy: bool = True,
        arena_slots: int = 8,
    ) -> None:
        self.pool: Optional[CodecPool] = (
            CodecPool(pool_workers, pool_kind) if pool_workers > 0 else None
        )
        self.memo: Optional[CodecMemoCache] = (
            CodecMemoCache(memo_capacity_bytes)
            if memo_capacity_bytes > 0
            else None
        )
        self.zero_copy = zero_copy
        self.arena = PageArena(slots=max(1, arena_slots))
        #: Codec jobs submitted speculatively and not yet folded into the
        #: memo: key -> PendingCodec.  Hot-path lookups drain these so a
        #: prefetch in flight is awaited, never recomputed.
        self._pending: Dict[tuple, PendingCodec] = {}
        #: Codec calls answered without running the codec (memo hits on
        #: compress/decompress, prefetched results adopted).
        self.codec_calls_saved = 0

    @classmethod
    def from_config(cls, perf_config) -> "PerfRuntime":
        """Build from a :class:`repro.api.config.PerfConfig`."""
        workers = perf_config.pool_workers
        if workers < 0:  # auto
            workers = default_workers()
        return cls(
            pool_workers=workers,
            pool_kind=perf_config.pool_kind,
            memo_capacity_bytes=perf_config.memo_capacity_bytes,
            zero_copy=perf_config.zero_copy,
            arena_slots=perf_config.arena_slots,
        )

    # -- compression -------------------------------------------------------

    def compress(self, codec_name: str, data) -> Tuple[bytes, int]:
        """``(payload, crc32(payload))`` for one page, memo-aware."""
        if self.memo is None:
            payload = _get_codec(codec_name).compress(bytes(data))
            return payload, zlib.crc32(payload) & 0xFFFFFFFF
        key = memo_key_compress(codec_name, data)
        cached = self.memo.get(key)
        if cached is not None:
            self.codec_calls_saved += 1
            return cached
        value = self._adopt_pending(key)
        if value is None:
            payload = _get_codec(codec_name).compress(bytes(data))
            value = (payload, zlib.crc32(payload) & 0xFFFFFFFF)
        self.memo.put(key, value)
        return value

    def compress_pair(
        self, data, codecs: Sequence[str] = ("lz4", "zstd")
    ) -> Dict[str, Tuple[bytes, int]]:
        """Compress ``data`` with every codec in ``codecs``.

        Misses are submitted to the pool *together* so independent codecs
        run on separate cores (Algorithm 1's dual evaluation); results
        are resolved in codec order, so the outcome is byte-identical to
        the serial loop.  Falls back to sequential :meth:`compress` when
        fewer than two jobs actually need computing.
        """
        out: Dict[str, Tuple[bytes, int]] = {}
        misses = []
        for codec_name in codecs:
            if self.memo is not None:
                key = memo_key_compress(codec_name, data)
                cached = self.memo.get(key)
                if cached is not None:
                    self.codec_calls_saved += 1
                    out[codec_name] = cached
                    continue
                pending = self._pending.pop(key, None)
                if pending is not None:
                    misses.append((codec_name, key, pending))
                    continue
                misses.append((codec_name, key, None))
            else:
                misses.append((codec_name, None, None))
        if self.pool is not None and len(misses) >= 2:
            payload_bytes = bytes(data)
            submitted = [
                (codec_name, key,
                 pending if pending is not None
                 else self.pool.submit_compress(codec_name, payload_bytes))
                for codec_name, key, pending in misses
            ]
            if len(submitted) > 1:
                self.pool.batches += 1
            for codec_name, key, pending in submitted:
                value = pending.result()
                if self.memo is not None:
                    self.memo.put(key, value)
                out[codec_name] = value
        else:
            for codec_name, key, pending in misses:
                if pending is not None:
                    value = pending.result()
                    self.codec_calls_saved += 1
                    if self.memo is not None:
                        self.memo.put(key, value)
                    out[codec_name] = value
                else:
                    out[codec_name] = self.compress(codec_name, data)
        return out

    # -- decompression -----------------------------------------------------

    def decompress(self, codec_name: str, payload, verified: bool = True) -> bytes:
        """Decompress ``payload``; memoized only for *verified* content.

        ``verified`` means the caller checked the payload against its
        stored CRC first.  Unverified payloads (no checksum in the index
        entry) bypass the memo entirely, so damaged bytes can never be
        masked by — or inserted into — the cache; and since keys are
        content digests, a bit-flipped payload could not hit a stale
        entry even if it got here (see tests/chaos/test_memo_chaos.py).
        """
        if self.memo is None or not verified:
            return _get_codec(codec_name).decompress(payload)
        key = memo_key_decompress(codec_name, payload)
        cached = self.memo.get(key)
        if cached is not None:
            self.codec_calls_saved += 1
            return cached
        value = self._adopt_pending(key)
        if value is None:
            value = _get_codec(codec_name).decompress(payload)
        self.memo.put(key, value)
        return value

    # -- hardware-gzip sizing ---------------------------------------------

    def hw_compressed_len(self, compressor, block) -> int:
        """``len(compressor.compress(block))`` with content memoization.

        The CSD write path only needs the compressed *length* of each
        4 KiB block to charge NAND cost; filler-tiled pages repeat block
        content constantly, so this is a pure-win cache even though the
        transform itself is C-speed zlib.
        """
        if self.memo is None:
            return len(compressor.compress(bytes(block)))
        key = memo_key_hw_len(block)
        cached = self.memo.get(key)
        if cached is not None:
            self.codec_calls_saved += 1
            return cached
        value = len(compressor.compress(bytes(block)))
        self.memo.put(key, value)
        return value

    # -- speculative prefetch ---------------------------------------------

    def warm_compress(self, codec_name: str, pages: Iterable[bytes]) -> int:
        """Submit compressions for upcoming inputs; returns jobs queued.

        Results land in :attr:`_pending` and are adopted (in content
        order, not completion order) by the next hot-path lookup for the
        same content.  No-op without both a pool and a memo.
        """
        if self.pool is None or self.memo is None:
            return 0
        queued = 0
        for page in pages:
            key = memo_key_compress(codec_name, page)
            if self.memo.get(key) is not None or key in self._pending:
                continue
            self._pending[key] = self.pool.submit_compress(
                codec_name, bytes(page)
            )
            queued += 1
        if queued:
            self.pool.batches += 1
        return queued

    def warm_decompress(self, codec_name: str, payloads: Iterable[bytes]) -> int:
        """Prefetch decompressions (scrub sweeps, migration reads)."""
        if self.pool is None or self.memo is None:
            return 0
        queued = 0
        for payload in payloads:
            key = memo_key_decompress(codec_name, payload)
            if self.memo.get(key) is not None or key in self._pending:
                continue
            self._pending[key] = self.pool.submit_decompress(
                codec_name, bytes(payload)
            )
            queued += 1
        if queued:
            self.pool.batches += 1
        return queued

    def _adopt_pending(self, key: tuple):
        pending = self._pending.pop(key, None)
        if pending is None:
            return None
        self.codec_calls_saved += 1
        return pending.result()

    # -- observability -----------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Export live counters through a volume's metrics registry.

        Callback gauges read this runtime directly, so the existing JSON
        and Prometheus exporters pick the fast path up with no changes.
        """
        memo = self.memo
        registry.gauge_fn(
            "perf.memo.hits", lambda: memo.hits if memo else 0
        )
        registry.gauge_fn(
            "perf.memo.misses", lambda: memo.misses if memo else 0
        )
        registry.gauge_fn(
            "perf.memo.hit_rate", lambda: memo.hit_rate if memo else 0.0
        )
        registry.gauge_fn(
            "perf.memo.used_bytes", lambda: memo.used_bytes if memo else 0
        )
        registry.gauge_fn(
            "perf.codec_calls_saved", lambda: self.codec_calls_saved
        )
        pool = self.pool
        registry.gauge_fn(
            "perf.pool.workers", lambda: pool.workers if pool else 0
        )
        registry.gauge_fn(
            "perf.pool.submitted", lambda: pool.submitted if pool else 0
        )
        registry.gauge_fn(
            "perf.pool.batches", lambda: pool.batches if pool else 0
        )
        # ``completed`` and ``max_in_flight`` are deliberately NOT
        # exported: done-callbacks fire on a waiter thread, so their
        # instantaneous values depend on host scheduling.  Exported
        # snapshots must stay byte-identical across runs (the
        # determinism CI diffs them); the wall-clock-dependent numbers
        # are still reported through :meth:`stats` in the perf harness
        # scoreboard, where nondeterminism is expected.
        registry.gauge_fn(
            "perf.arena.reuse_rate", lambda: self.arena.reuse_rate
        )

    def stats(self) -> dict:
        return {
            "memo": self.memo.stats() if self.memo else None,
            "pool": self.pool.stats() if self.pool else None,
            "arena": self.arena.stats(),
            "codec_calls_saved": self.codec_calls_saved,
            "zero_copy": self.zero_copy,
        }

    def shutdown(self) -> None:
        if self.pool is not None:
            self.pool.shutdown()
        self._pending.clear()


#: The process-wide active runtime (None = fast path off, legacy inline
#: behavior everywhere).
_active: Optional[PerfRuntime] = None


def perf_active() -> Optional[PerfRuntime]:
    return _active


def configure(runtime: Optional[PerfRuntime]) -> Optional[PerfRuntime]:
    """Install ``runtime`` as the process-wide fast path (None clears)."""
    global _active
    if _active is not None and _active is not runtime:
        _active.shutdown()
    _active = runtime
    return runtime


def deactivate() -> None:
    configure(None)


def configure_from_env() -> Optional[PerfRuntime]:
    """CLI hook: honour ``REPRO_PERF`` for opt-in fast-path runs.

    ``REPRO_PERF=0``/unset leaves the fast path off.  ``REPRO_PERF=1``
    enables memo + auto-sized pool.  A comma-separated spec tunes it:
    ``REPRO_PERF=pool=2,memo=64,kind=thread`` (memo in MiB; ``pool=0``
    for memo-only).
    """
    spec = os.environ.get("REPRO_PERF", "").strip()
    if spec in ("", "0", "off", "false"):
        return perf_active()
    if spec in ("1", "on", "true"):
        return configure(
            PerfRuntime(pool_workers=default_workers())
        )
    workers = default_workers()
    kind = "process"
    memo_bytes = DEFAULT_MEMO_BYTES
    for part in spec.split(","):
        if not part.strip():
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        value = value.strip()
        if name == "pool":
            workers = int(value)
        elif name == "memo":
            memo_bytes = int(float(value) * MiB)
        elif name == "kind":
            kind = value
        else:
            raise ValueError(f"unknown REPRO_PERF key {name!r} in {spec!r}")
    return configure(
        PerfRuntime(
            pool_workers=workers,
            pool_kind=kind,
            memo_capacity_bytes=memo_bytes,
        )
    )
