"""Open-loop arrival-process load generation for the serving layer.

A closed-loop driver (send, wait, send) can never overload a server —
its offered load collapses to the server's completion rate, hiding
exactly the queueing behavior admission control exists to manage.  This
generator is **open-loop**: arrivals come from a seeded stochastic
process (Poisson, bursty, or diurnal) laid out entirely in *simulated*
time, and every request is submitted pipelined at its scheduled
simulated arrival regardless of how many are still in flight.  Offered
load is therefore an input, not an emergent property, and pushing the
rate past capacity produces real (deterministic) rejections.

Everything measurable flows through :mod:`repro.obs`: latency
percentiles from log-bucketed histograms, rejection/error counters, and
a pair of SLOs (:class:`~repro.obs.slo.LatencySLO` on p95,
:class:`~repro.obs.slo.ErrorBudgetSLO` on the rejection ratio)
evaluated by the standard :class:`~repro.obs.slo.SLOEvaluator`.  The
:class:`LoadReport` artifact is split into a ``sim`` section — a pure
function of the spec (seed included), byte-identical across runs, which
the CI ``net-smoke`` job double-runs and diffs — and a ``wall`` section
carrying the wall-clock numbers that legitimately vary.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.transport import AdmissionError, Transport
from repro.common.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import ErrorBudgetSLO, LatencySLO, SLOEvaluator

ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class ArrivalSpec:
    """One seeded open-loop scenario: arrival process plus workload mix."""

    #: ``poisson`` (memoryless), ``bursty`` (on/off rate switching), or
    #: ``diurnal`` (sinusoidal rate, thinning-sampled).
    process: str = "poisson"
    #: Mean offered load in requests per simulated second.
    rate_per_s: float = 2000.0
    requests: int = 1000
    seed: int = 0
    #: Workload mix: point reads, the rest split evenly between
    #: inserts and updates.
    read_fraction: float = 0.7
    #: Keyspace preloaded with ``bulk_load`` before the run.
    keys: int = 512
    value_bytes: int = 96
    table: str = "load"
    #: bursty: full on/off cycle length and on-phase rate multiplier.
    burst_period_s: float = 0.25
    burst_factor: float = 8.0
    #: diurnal: sinusoid period and relative amplitude in [0, 1).
    diurnal_period_s: float = 2.0
    diurnal_depth: float = 0.8

    def validate(self) -> "ArrivalSpec":
        if self.process not in ARRIVAL_PROCESSES:
            raise ReproError(
                f"unknown arrival process {self.process!r}; options: "
                f"{', '.join(ARRIVAL_PROCESSES)}"
            )
        if self.rate_per_s <= 0:
            raise ReproError("rate_per_s must be positive")
        if self.requests < 1:
            raise ReproError("requests must be at least 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ReproError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ReproError("diurnal_depth must be in [0, 1)")
        if self.keys < 1:
            raise ReproError("keys must be at least 1")
        return self


def build_schedule(spec: ArrivalSpec) -> List[float]:
    """Simulated arrival offsets in µs, strictly nondecreasing,
    deterministic in ``spec.seed``."""
    spec.validate()
    rng = random.Random(spec.seed)
    rate_us = spec.rate_per_s / 1e6  # arrivals per simulated µs
    out: List[float] = []
    t = 0.0
    if spec.process == "poisson":
        for _ in range(spec.requests):
            t += rng.expovariate(rate_us)
            out.append(t)
    elif spec.process == "bursty":
        period_us = spec.burst_period_s * 1e6
        half = period_us / 2.0
        # On-phase runs hot by burst_factor; the off-phase rate is scaled
        # so the cycle's mean offered load stays rate_per_s.
        on_rate = rate_us * spec.burst_factor
        off_rate = rate_us * max(2.0 - spec.burst_factor, 0.05)
        for _ in range(spec.requests):
            in_burst = (t % period_us) < half
            t += rng.expovariate(on_rate if in_burst else off_rate)
            out.append(t)
    else:  # diurnal: Lewis-Shedler thinning against the peak rate
        peak = rate_us * (1.0 + spec.diurnal_depth)
        period_us = spec.diurnal_period_s * 1e6
        for _ in range(spec.requests):
            while True:
                t += rng.expovariate(peak)
                lam = rate_us * (1.0 + spec.diurnal_depth * math.sin(
                    2.0 * math.pi * t / period_us
                ))
                if rng.random() * peak <= lam:
                    break
            out.append(t)
    return out


def build_ops(spec: ArrivalSpec) -> List[Tuple[str, int]]:
    """The seeded op mix: one (op, key) per scheduled arrival."""
    rng = random.Random(spec.seed + 1)
    ops: List[Tuple[str, int]] = []
    for _ in range(spec.requests):
        key = rng.randrange(spec.keys)
        roll = rng.random()
        if roll < spec.read_fraction:
            ops.append(("select", key))
        elif roll < spec.read_fraction + (1.0 - spec.read_fraction) / 2.0:
            ops.append(("update", key))
        else:
            # Inserts land above the preloaded keyspace (fresh keys).
            ops.append(("insert", spec.keys + len(ops)))
    return ops


def _payload(spec: ArrivalSpec, key: int) -> bytes:
    seed_byte = (spec.seed + key) % 251
    return bytes(
        (seed_byte + i) % 256 for i in range(spec.value_bytes)
    )


@dataclass
class LoadReport:
    """Everything one load run measured, split sim vs wall."""

    spec: ArrivalSpec
    transport_kind: str = "unknown"
    requests: int = 0
    completed: int = 0
    rejected_server: int = 0
    rejected_client: int = 0
    errors: int = 0
    start_us: float = 0.0
    end_us: float = 0.0
    percentiles: Dict[str, float] = field(default_factory=dict)
    max_queue_depth: int = 0
    slo_passed: bool = True
    slo_lines: List[str] = field(default_factory=list)
    wall_s: float = 0.0
    registry: Optional[MetricsRegistry] = None

    @property
    def sim_duration_us(self) -> float:
        return max(self.end_us - self.start_us, 0.0)

    @property
    def throughput_per_s(self) -> float:
        """Completions per *simulated* second (deterministic)."""
        if self.sim_duration_us <= 0:
            return 0.0
        return self.completed / (self.sim_duration_us / 1e6)

    def to_artifact(self) -> Dict[str, Any]:
        """``sim`` is byte-stable across runs of the same spec; ``wall``
        is the part a diff must ignore."""
        return {
            "sim": {
                "spec": asdict(self.spec),
                "transport": self.transport_kind,
                "requests": self.requests,
                "completed": self.completed,
                "rejected_server": self.rejected_server,
                "errors": self.errors,
                "sim_duration_us": round(self.sim_duration_us, 3),
                "throughput_per_s": round(self.throughput_per_s, 3),
                "latency_us": {
                    name: round(value, 3)
                    for name, value in sorted(self.percentiles.items())
                },
                "max_queue_depth": self.max_queue_depth,
                "slo_passed": self.slo_passed,
                "slo": list(self.slo_lines),
            },
            "wall": {
                "wall_s": round(self.wall_s, 6),
                "rejected_client": self.rejected_client,
            },
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_artifact(), indent=2, sort_keys=True
        ) + "\n"

    def write_artifact(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    def render(self) -> str:
        lines = [
            f"load: {self.spec.process} x{self.requests} "
            f"@ {self.spec.rate_per_s:g}/s (seed {self.spec.seed}) "
            f"over {self.transport_kind}",
            f"  completed {self.completed}  "
            f"rejected(server) {self.rejected_server}  "
            f"rejected(client) {self.rejected_client}  "
            f"errors {self.errors}",
            f"  sim duration {self.sim_duration_us / 1e3:.1f} ms  "
            f"throughput {self.throughput_per_s:.0f}/s (sim)  "
            f"wall {self.wall_s:.2f} s",
        ]
        if self.percentiles:
            lines.append(
                "  latency  " + "  ".join(
                    f"{name} {value:.0f}us"
                    for name, value in sorted(self.percentiles.items())
                )
            )
        lines.append(
            f"  max queue depth {self.max_queue_depth}  "
            f"SLO {'PASS' if self.slo_passed else 'FAIL'}"
        )
        lines.extend(f"    {line}" for line in self.slo_lines)
        return "\n".join(lines)


def run_load(
    transport: Transport,
    spec: ArrivalSpec,
    *,
    registry: Optional[MetricsRegistry] = None,
    p95_target_us: float = 50_000.0,
    rejection_budget: float = 0.5,
) -> LoadReport:
    """Drive one open-loop scenario through ``transport``.

    Preloads the keyspace (closed-loop ``bulk_load``), then submits
    every scheduled op pipelined at its simulated arrival.  Transports
    without a pipelined path (``LocalTransport``) fall back to
    closed-loop sync calls at the same arrival stamps — same workload,
    no overlap, no rejections.
    """
    spec.validate()
    registry = registry if registry is not None else MetricsRegistry()
    latency = registry.histogram("net.load.latency_us")
    depth_hist = registry.histogram("net.load.queue_depth")
    requests_total = registry.counter("net.load.requests")
    rejected_counter = registry.counter("net.load.rejected")
    errors_counter = registry.counter("net.load.errors")
    report = LoadReport(
        spec=spec, transport_kind=transport.kind, registry=registry
    )
    wall_start = time.monotonic()

    transport.call("create_table", spec.table)
    preload = [(key, _payload(spec, key)) for key in range(spec.keys)]
    transport.call("bulk_load", spec.table, preload)
    t0 = transport.now_us
    report.start_us = t0

    schedule = build_schedule(spec)
    ops = build_ops(spec)
    pipelined = hasattr(transport, "submit")
    futures = []
    for offset, (op, key) in zip(schedule, ops):
        arrival = t0 + offset
        requests_total.inc()
        args: Tuple[Any, ...]
        if op == "select":
            args = (spec.table, key)
        else:
            args = (spec.table, key, _payload(spec, key))
        if pipelined:
            try:
                futures.append(transport.submit(op, *args,
                                                arrival_us=arrival))
            except AdmissionError:
                report.rejected_client += 1
                rejected_counter.inc()
        else:
            transport.advance_to(arrival)
            try:
                result = transport.call(op, *args)
            except AdmissionError:
                report.rejected_server += 1
                rejected_counter.inc()
            except ReproError:
                report.errors += 1
                errors_counter.inc()
            else:
                report.completed += 1
                latency.record(max(result.done_us - arrival, 0.0))
                report.end_us = max(report.end_us, result.done_us)

    if pipelined:
        report.end_us = transport.flush()
        for future in futures:
            response = transport.pool.wait(future)
            depth_hist.record(response.queue_depth)
            report.max_queue_depth = max(
                report.max_queue_depth, response.queue_depth
            )
            if response.rejected:
                report.rejected_server += 1
                rejected_counter.inc()
            elif response.ok:
                report.completed += 1
                latency.record(max(response.latency_us, 0.0))
                report.end_us = max(report.end_us, response.done_us)
            else:
                report.errors += 1
                errors_counter.inc()

    report.requests = spec.requests
    if latency.count:
        report.percentiles = {
            "p50": latency.p50,
            "p95": latency.p95,
            "p99": latency.p99,
            "max": latency.max,
        }

    evaluator = SLOEvaluator(
        registries=[registry],
        specs=[
            LatencySLO(
                "net-load-p95", "net.load.latency_us", 95.0, p95_target_us
            ),
            ErrorBudgetSLO(
                "net-load-rejections",
                "net.load.rejected",
                "net.load.requests",
                budget=rejection_budget,
            ),
            ErrorBudgetSLO(
                "net-load-errors",
                "net.load.errors",
                "net.load.requests",
                budget=0.0,
            ),
        ],
    )
    slo_report = evaluator.report(report.end_us or t0)
    report.slo_passed = slo_report.passed
    report.slo_lines = [
        f"{status.name}: {'ok' if status.ok else 'BREACH'} "
        f"(value {status.value:.3f}, target {status.target:.3f})"
        for status in slo_report.statuses
    ]
    report.wall_s = time.monotonic() - wall_start
    return report


__all__ = [
    "ARRIVAL_PROCESSES",
    "ArrivalSpec",
    "LoadReport",
    "build_ops",
    "build_schedule",
    "run_load",
]
