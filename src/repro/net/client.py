"""The pooled socket client: PolarStore over the wire.

:class:`SocketPool` owns N TCP connections on a private asyncio loop in
a daemon thread and exposes a thread-safe, future-based request API:

* **sequencing** — every data op gets its per-session ``seq`` and its
  simulated ``arrival_us`` stamped *at dispatch*, on the loop, in
  dispatch order.  Stamping at dispatch (not at enqueue) means a
  request that times out while queued never occupies a sequence slot,
  so the server's reorder buffer can never stall on a gap;
* **admission control** — a bounded in-flight window
  (``max_inflight``) plus a bounded dispatch queue (``queue_cap``);
  a full queue rejects immediately with
  :class:`~repro.api.transport.AdmissionError` (backpressure the
  caller can see) instead of buffering without bound;
* **timeouts** — each blocking wait carries a wall-clock deadline
  (:class:`~repro.api.transport.TransportTimeout`); the request's
  reply is discarded if it arrives late;
* **failure containment** — a mid-stream disconnect fails every
  request in flight on that connection immediately; nothing hangs
  waiting on a reply that can no longer arrive.

:class:`SocketTransport` wraps a pool in the
:class:`~repro.api.transport.Transport` interface, so
``PolarStore.connect(addr)`` hands back the same
:class:`~repro.api.client.PolarStoreClient` as ``PolarStore.open``:
identical ops, identical result objects, identical simulated timings
(golden-tested against ``LocalTransport``).  The client keeps the
simulated-time cursor, advanced from each reply's ``done_us``.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.transport import (
    AdmissionError,
    Transport,
    TransportError,
    TransportTimeout,
)
from repro.net.protocol import (
    FLAG_SYNC,
    MAX_FRAME_BYTES,
    VERSION,
    FrameDecoder,
    FrameError,
    Request,
    Response,
    decode_message,
)

#: Process-wide session id allocator: pid-salted so two client processes
#: hitting one server never share a sequencer (ids are routing keys
#: only; simulated outcomes never depend on their values).
_session_ids = itertools.count(1)


def _next_session_id() -> int:
    return (os.getpid() << 20) | next(_session_ids)


def parse_addr(addr: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    """``"host:port"`` or ``(host, port)`` -> ``(host, port)``."""
    if isinstance(addr, str):
        host, sep, port = addr.rpartition(":")
        if not sep or not host:
            raise TransportError(
                f"address must be 'host:port', got {addr!r}"
            )
        return (host, int(port))
    host, port = addr
    return (str(host), int(port))


class _Connection:
    """One TCP connection: writer, reader task, and its in-flight ids."""

    __slots__ = ("index", "reader", "writer", "decoder", "task", "alive")

    def __init__(self, index: int) -> None:
        self.index = index
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.decoder = FrameDecoder(MAX_FRAME_BYTES)
        self.task: Optional[asyncio.Task] = None
        self.alive = False


class SocketPool:
    """N connections to one server, a session sequencer, and a bounded
    dispatch pipeline (window + queue) — the client-side half of the
    serving layer's admission control."""

    def __init__(
        self,
        addr: Union[str, Tuple[str, int]],
        *,
        connections: int = 2,
        max_inflight: int = 256,
        queue_cap: int = 4096,
        timeout_s: float = 30.0,
    ) -> None:
        if connections < 1:
            raise ValueError("pool needs at least one connection")
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self.addr = parse_addr(addr)
        self.max_inflight = max_inflight
        self.queue_cap = queue_cap
        self.timeout_s = timeout_s
        self.session = _next_session_id()
        self.hello: Dict[str, Any] = {}
        self.rejected = 0  # client-side queue-full rejections
        self._closed = False
        self._next_id = itertools.count(1)
        self._next_seq = 0
        self._last_arrival = 0.0
        self._rr = 0
        #: request id -> (Future[Response], connection index)
        self._pending: Dict[int, Tuple[Future, int]] = {}
        #: (request-kwargs, future) waiting for a window slot.
        self._queue: List[Tuple[dict, Future]] = []
        self._conns = [_Connection(i) for i in range(connections)]
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-pool", daemon=True
        )
        self._thread.start()
        try:
            self._run(self._connect_all(), timeout=timeout_s)
        except (TimeoutError, FuturesTimeoutError):
            self.close()
            host, port = self.addr
            raise TransportTimeout(
                f"no handshake reply from {host}:{port} "
                f"within {timeout_s:g}s"
            ) from None
        except BaseException:
            self.close()
            raise

    # -- loop plumbing -----------------------------------------------------

    def _run(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout)

    async def _connect_all(self) -> None:
        host, port = self.addr
        for conn in self._conns:
            try:
                conn.reader, conn.writer = await asyncio.open_connection(
                    host, port
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to {host}:{port}: {exc}"
                ) from exc
            conn.alive = True
            conn.task = asyncio.ensure_future(self._read_loop(conn))
        # Handshake on connection 0: version check + deployment shape.
        future: Future = Future()
        request = Request(
            id=next(self._next_id), op="hello",
            args=[self.session, VERSION],
        )
        self._pending[request.id] = (future, 0)
        await self._send(self._conns[0], request, future)
        response = await asyncio.wrap_future(future)
        if not response.ok:
            raise TransportError(f"handshake failed: {response.error}")
        self.hello = dict(response.value)

    async def _read_loop(self, conn: _Connection) -> None:
        reader = conn.reader
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                for payload in conn.decoder.feed(data):
                    message = decode_message(payload)
                    if isinstance(message, Response):
                        self._resolve(message)
        except (ConnectionError, OSError, FrameError):
            pass
        finally:
            self._fail_connection(conn, "connection lost mid-stream")

    def _resolve(self, response: Response) -> None:
        entry = self._pending.pop(response.id, None)
        if entry is not None:
            future, _ = entry
            if not future.set_running_or_notify_cancel():
                pass  # timed out caller already walked away
            else:
                future.set_result(response)
        self._pump()

    def _fail_connection(self, conn: _Connection, reason: str) -> None:
        conn.alive = False
        if conn.writer is not None and not conn.writer.is_closing():
            conn.writer.close()
        stranded = [
            rid for rid, (_, index) in self._pending.items()
            if index == conn.index
        ]
        for rid in stranded:
            future, _ = self._pending.pop(rid)
            if future.set_running_or_notify_cancel():
                future.set_exception(TransportError(
                    f"{reason} (request id {rid}, "
                    f"connection {conn.index} to "
                    f"{self.addr[0]}:{self.addr[1]})"
                ))
        self._pump()

    # -- dispatch ----------------------------------------------------------

    def request(
        self,
        op: str,
        args: List[Any],
        *,
        sync: bool = False,
        arrival_us: float = 0.0,
        control: bool = False,
    ) -> Future:
        """Thread-safe: enqueue one op; returns a Future[Response].

        Raises :class:`AdmissionError` immediately when the in-flight
        window and the dispatch queue are both full, and
        :class:`TransportError` when the pool is closed or every
        connection has died.
        """
        if self._closed:
            raise TransportError("socket pool is closed")
        future: Future = Future()
        spec = dict(
            op=op, args=args, sync=sync,
            arrival_us=arrival_us, control=control,
        )
        try:
            self._loop.call_soon_threadsafe(self._enqueue, spec, future)
        except RuntimeError as exc:
            raise TransportError("socket pool loop is gone") from exc
        return future

    def _enqueue(self, spec: dict, future: Future) -> None:
        if not any(conn.alive for conn in self._conns):
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    TransportError("all pool connections are down")
                )
            return
        if spec["control"] or len(self._pending) < self.max_inflight:
            self._dispatch(spec, future)
            return
        if len(self._queue) >= self.queue_cap:
            self.rejected += 1
            if future.set_running_or_notify_cancel():
                future.set_exception(AdmissionError(
                    f"client dispatch queue full "
                    f"({self.queue_cap} waiting behind a "
                    f"{self.max_inflight}-request window)"
                ))
            return
        self._queue.append((spec, future))

    def _pump(self) -> None:
        """Window slots freed (reply or failure): dispatch queued work."""
        while self._queue and len(self._pending) < self.max_inflight:
            spec, future = self._queue.pop(0)
            if future.cancelled():
                continue
            self._dispatch(spec, future)

    def _dispatch(self, spec: dict, future: Future) -> None:
        """Stamp id/seq/arrival in dispatch order and write the frame."""
        conn = self._pick_connection()
        if conn is None:
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    TransportError("all pool connections are down")
                )
            return
        request_id = next(self._next_id)
        if spec["control"]:
            request = Request(
                id=request_id, op=spec["op"], args=spec["args"],
            )
        else:
            self._last_arrival = max(
                self._last_arrival, float(spec["arrival_us"])
            )
            request = Request(
                id=request_id,
                op=spec["op"],
                args=spec["args"],
                seq=self._next_seq,
                session=self.session,
                arrival_us=self._last_arrival,
                flags=FLAG_SYNC if spec["sync"] else 0,
            )
            self._next_seq += 1
        self._pending[request_id] = (future, conn.index)
        self._loop.create_task(self._send(conn, request, future))

    def _pick_connection(self) -> Optional[_Connection]:
        for offset in range(len(self._conns)):
            conn = self._conns[(self._rr + offset) % len(self._conns)]
            if conn.alive:
                self._rr = (conn.index + 1) % len(self._conns)
                return conn
        return None

    async def _send(
        self, conn: _Connection, request: Request, future: Future
    ) -> None:
        try:
            conn.writer.write(request.encode())
            await conn.writer.drain()
        except (ConnectionError, OSError):
            self._fail_connection(conn, "connection lost while sending")

    # -- blocking conveniences ---------------------------------------------

    def call(
        self,
        op: str,
        args: List[Any],
        *,
        sync: bool = True,
        arrival_us: float = 0.0,
        control: bool = False,
        timeout_s: Optional[float] = None,
    ) -> Response:
        """Send one request and block for its reply."""
        future = self.request(
            op, args, sync=sync, arrival_us=arrival_us, control=control
        )
        return self.wait(future, timeout_s=timeout_s)

    def wait(
        self, future: Future, *, timeout_s: Optional[float] = None
    ) -> Response:
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            return future.result(timeout)
        except (TimeoutError, FuturesTimeoutError):
            future.cancel()
            raise TransportTimeout(
                f"no reply from {self.addr[0]}:{self.addr[1]} "
                f"within {timeout:g}s"
            ) from None

    def flush(self, *, timeout_s: Optional[float] = None) -> Response:
        """Sequenced run-to-idle: every pipelined op submitted before
        this point has its reply on the wire once flush returns."""
        return self.call(
            "flush", [], sync=False,
            arrival_us=self._last_arrival, timeout_s=timeout_s,
        )

    @property
    def inflight(self) -> int:
        return len(self._pending)

    @property
    def queued(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop.is_running():
            try:
                self._run(self._shutdown(), timeout=5.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    async def _shutdown(self) -> None:
        for conn in self._conns:
            if conn.task is not None:
                conn.task.cancel()
            if conn.writer is not None and not conn.writer.is_closing():
                conn.writer.close()
        for rid in list(self._pending):
            future, _ = self._pending.pop(rid)
            if future.set_running_or_notify_cancel():
                future.set_exception(TransportError("pool closed"))


class SocketTransport(Transport):
    """The :class:`Transport` over a :class:`SocketPool`.

    ``call`` is closed-loop (``FLAG_SYNC``: the server runs the engine
    until the op completes, so results match ``LocalTransport`` to the
    byte); ``submit``/``flush`` are the open-loop path the load
    generator drives.  The simulated-time cursor lives client-side and
    advances from reply ``done_us`` stamps.
    """

    kind = "socket"

    def __init__(
        self,
        addr: Union[str, Tuple[str, int]],
        *,
        connections: int = 2,
        max_inflight: int = 256,
        queue_cap: int = 4096,
        timeout_s: float = 30.0,
    ) -> None:
        self.pool = SocketPool(
            addr,
            connections=connections,
            max_inflight=max_inflight,
            queue_cap=queue_cap,
            timeout_s=timeout_s,
        )
        self._now_us = 0.0

    # -- simulated time ----------------------------------------------------

    @property
    def now_us(self) -> float:
        return self._now_us

    def advance_to(self, now_us: float) -> float:
        self._now_us = max(self._now_us, now_us)
        return self._now_us

    # -- introspection -----------------------------------------------------

    @property
    def sharded(self) -> bool:
        return bool(self.pool.hello.get("sharded", False))

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        doc["addr"] = f"{self.pool.addr[0]}:{self.pool.addr[1]}"
        doc.update(self.pool.hello)
        return doc

    # -- ops ---------------------------------------------------------------

    def call(self, op: str, /, *args, **kwargs):
        wire_args = self._wire_args(op, args, kwargs)
        response = self.pool.call(
            op, wire_args, sync=True, arrival_us=self._now_us,
        )
        return self._decode(op, response)

    def submit(self, op: str, /, *args, arrival_us: float = 0.0, **kwargs):
        """Open-loop pipelined submit; returns a Future[Response].

        The reply materializes when a later arrival (or :meth:`flush`)
        drains the engine past the op's completion, or immediately with
        ``STATUS_REJECTED`` if the server's admission window is full.
        """
        wire_args = self._wire_args(op, args, kwargs)
        return self.pool.request(
            op, wire_args, sync=False,
            arrival_us=max(arrival_us, self._now_us),
        )

    def flush(self) -> float:
        """Force every outstanding pipelined reply; returns server
        simulated time after the drain."""
        response = self.pool.flush()
        self._now_us = max(self._now_us, response.done_us)
        return float(response.value)

    def stats(self) -> Dict[str, Any]:
        return dict(self.pool.call("stats", [], control=True).value)

    def ping(self) -> float:
        return float(self.pool.call("ping", [], control=True).value)

    def _wire_args(self, op: str, args: tuple, kwargs: dict) -> List[Any]:
        if op == "select":
            table, key = args
            return [table, key, int(kwargs.pop("ro_index", -1))]
        if kwargs:
            raise self._no_capability(
                f"op {op!r} options {sorted(kwargs)} (in-process tuning "
                f"knobs are not part of the wire protocol)"
            )
        if op == "bulk_load":
            table, rows = args
            return [table, [[key, bytes(value)] for key, value in rows]]
        return list(args)

    def _decode(self, op: str, response: Response):
        if response.rejected:
            raise AdmissionError(
                f"server admission window full for {op!r} "
                f"(in-flight depth {response.queue_depth})"
            )
        if not response.ok:
            raise TransportError(
                f"remote {op!r} failed: {response.error}"
            )
        self._now_us = max(self._now_us, response.done_us)
        return decode_result(op, response)

    def close(self) -> None:
        self.pool.close()


def decode_result(op: str, response: Response):
    """Reply -> the same result object a LocalTransport call returns."""
    kind = response.kind
    if kind == "op":
        from repro.db.rw_node import OpResult

        value = response.value
        return OpResult(
            done_us=response.done_us,
            io_reads=response.io_reads,
            redo_bytes=response.redo_bytes,
            value=None if value is None else bytes(value),
        )
    if kind in ("time", "ratio"):
        return float(response.value)
    if kind == "read":
        from repro.storage.node import ReadResult

        doc = response.value
        return ReadResult(
            data=bytes(doc["data"]),
            done_us=response.done_us,
            io_reads=response.io_reads,
            cpu_us=float(doc["cpu_us"]),
            consolidated=bool(doc["consolidated"]),
        )
    if kind == "commit":
        from repro.storage.store import CommittedWrite

        # ``prepared`` carries in-process page buffers; over the wire
        # the commit timestamp is the contract.
        return CommittedWrite(commit_us=response.done_us, prepared=None)
    if kind == "space":
        return (int(response.value[0]), int(response.value[1]))
    if kind in ("hello", "stats"):
        return dict(response.value)
    return None  # "none": create_table and friends


__all__ = [
    "SocketPool",
    "SocketTransport",
    "decode_result",
    "parse_addr",
]
