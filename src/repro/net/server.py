"""The PolarStore socket server: one engine-bound deployment, framed.

:class:`PolarStoreServer` hosts a :class:`~repro.api.transport
.LocalTransport` (a real store or sharded cluster, engine-bound when
``engine.enabled``) behind the :mod:`repro.net.protocol` wire format on
an asyncio TCP front-end.  The design problem is determinism: sockets
deliver requests in wall-clock order, but the reproduction's value is
that simulated outcomes are a pure function of the seeded workload.
Three mechanisms restore that property:

* **per-session sequencing** — data ops carry a client-assigned ``seq``
  and are executed in exactly that order via a reorder buffer, no
  matter how frames interleave across a pool's connections;
* **client-stamped simulated arrivals** — each op is bridged onto the
  engine at its ``arrival_us`` through a
  :class:`~repro.engine.bridge.WallClockBridge`, which drains earlier
  work first and evaluates the admission window at the simulated
  arrival instant;
* **open- vs closed-loop split** — a ``FLAG_SYNC`` op runs the engine
  until it completes and replies immediately (byte-for-byte the
  ``LocalTransport`` semantics, which the golden equivalence test
  checks); a pipelined op replies whenever a later arrival or an
  explicit ``flush`` drains the engine past its completion.

Wall-clock jitter therefore changes only *when* reply frames leave,
never their simulated timings or payload bytes.

Everything runs on one asyncio loop, so request processing is
serialized without locks.  :func:`serve_in_thread` wraps the server in
a background thread for tests and in-process tooling.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.api.config import ReproConfig
from repro.api.transport import LocalTransport
from repro.engine.bridge import BridgeCompletion, WallClockBridge
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    VERSION,
    FrameDecoder,
    FrameError,
    ProtocolError,
    Request,
    Response,
    decode_message,
)


class _Session:
    """Per-session reorder buffer: data ops execute in ``seq`` order."""

    __slots__ = ("sid", "next_seq", "pending")

    def __init__(self, sid: int) -> None:
        self.sid = sid
        self.next_seq = 0
        #: seq -> (request, writer) parked until its turn comes.
        self.pending: Dict[int, Tuple[Request, asyncio.StreamWriter]] = {}


class PolarStoreServer:
    """One PolarStore deployment served over TCP.

    ``config.net`` supplies the bind address, the bridge admission
    window, and the frame-size ceiling.  With ``engine.enabled`` the
    server runs open-loop through a :class:`WallClockBridge`; without
    an engine every op (pipelined or not) executes synchronously — the
    analytic path has no overlap to model.
    """

    def __init__(
        self,
        config: Optional[ReproConfig] = None,
        *,
        registry=None,
    ) -> None:
        self.config = config or ReproConfig()
        self.transport = LocalTransport(self.config)
        self.registry = (
            registry if registry is not None else self.transport.metrics
        )
        engine = self.transport.engine
        self.bridge: Optional[WallClockBridge] = None
        if engine is not None:
            self.bridge = WallClockBridge(
                engine,
                window=self.config.net.window,
                registry=self.registry,
            )
        self._max_frame = (
            self.config.net.max_frame_bytes or MAX_FRAME_BYTES
        )
        self._sessions: Dict[int, _Session] = {}
        self._next_token = 0
        #: bridge token -> (writer, request) awaiting completion reply.
        self._inflight: Dict[int, Tuple[asyncio.StreamWriter, Request]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.addr: Optional[Tuple[str, int]] = None
        self._requests = self.registry.counter("net.server.requests")
        self._replies = self.registry.counter("net.server.replies")
        self._frame_errors = self.registry.counter("net.server.frame_errors")

    # -- lifecycle ---------------------------------------------------------

    async def start(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> Tuple[str, int]:
        """Bind and listen; returns the actual (host, port) — pass
        ``port=0`` for an ephemeral port."""
        host = host if host is not None else self.config.net.host
        port = port if port is not None else self.config.net.port
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        self.addr = sock.getsockname()[:2]
        return self.addr

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder(self._max_frame)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                try:
                    payloads = decoder.feed(data)
                except FrameError:
                    # A stream that lost framing cannot resync; drop it.
                    self._frame_errors.inc()
                    break
                for payload in payloads:
                    try:
                        message = decode_message(payload)
                    except ProtocolError as exc:
                        await self._reply_malformed(writer, payload, exc)
                        continue
                    if not isinstance(message, Request):
                        continue  # a response frame to a server is noise
                    self._requests.inc()
                    await self._route(message, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _reply_malformed(
        self, writer: asyncio.StreamWriter, payload: Any, exc: Exception
    ) -> None:
        """Structurally valid frame, semantically broken request: reply
        per-request if an id is recoverable, else ignore."""
        req_id = payload.get("id") if isinstance(payload, dict) else None
        if isinstance(req_id, int):
            await self._write(writer, Response(
                id=req_id,
                status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
            ))

    # -- sequencing --------------------------------------------------------

    async def _route(
        self, req: Request, writer: asyncio.StreamWriter
    ) -> None:
        if req.spec.control:
            await self._process_control(req, writer)
            return
        session = self._sessions.get(req.session)
        if session is None:
            session = self._sessions[req.session] = _Session(req.session)
        if req.seq != session.next_seq:
            if req.seq < session.next_seq or req.seq in session.pending:
                await self._write(writer, Response(
                    id=req.id,
                    status=STATUS_ERROR,
                    error=(
                        f"sequence violation: seq {req.seq} vs "
                        f"expected {session.next_seq}"
                    ),
                ))
                return
            session.pending[req.seq] = (req, writer)
            return
        await self._process(req, writer)
        session.next_seq += 1
        while session.next_seq in session.pending:
            queued, queued_writer = session.pending.pop(session.next_seq)
            await self._process(queued, queued_writer)
            session.next_seq += 1

    # -- control ops -------------------------------------------------------

    async def _process_control(
        self, req: Request, writer: asyncio.StreamWriter
    ) -> None:
        now = self.transport.now_us
        if req.op == "hello":
            session_id, client_version = req.args
            if client_version != VERSION:
                await self._write(writer, Response(
                    id=req.id,
                    status=STATUS_ERROR,
                    error=(
                        f"protocol version mismatch: client {client_version}"
                        f", server {VERSION}"
                    ),
                ))
                return
            if session_id not in self._sessions:
                self._sessions[session_id] = _Session(session_id)
            await self._write(writer, Response(
                id=req.id,
                kind="hello",
                value={
                    "session": session_id,
                    "version": VERSION,
                    "sharded": self.transport.sharded,
                    "engine": self.transport.engine is not None,
                    "window": (
                        self.bridge.window if self.bridge is not None else 0
                    ),
                },
                done_us=now,
            ))
        elif req.op == "ping":
            await self._write(writer, Response(
                id=req.id, kind="time", value=now, done_us=now,
            ))
        elif req.op == "stats":
            bridge = self.bridge
            await self._write(writer, Response(
                id=req.id,
                kind="stats",
                value={
                    "now_us": now,
                    "sessions": len(self._sessions),
                    "admitted": bridge.admitted if bridge else 0,
                    "rejected": bridge.rejected if bridge else 0,
                    "completed": bridge.completed if bridge else 0,
                    "queue_depth": bridge.queue_depth if bridge else 0,
                    "window": bridge.window if bridge else 0,
                },
                done_us=now,
            ))

    # -- data ops ----------------------------------------------------------

    async def _process(
        self, req: Request, writer: asyncio.StreamWriter
    ) -> None:
        if req.op == "flush":
            if self.bridge is not None:
                await self._send_completions(self.bridge.flush())
            now = self.transport.now_us
            await self._write(writer, Response(
                id=req.id, kind="time", value=now,
                done_us=now, arrival_us=req.arrival_us,
            ))
            return
        # Time never flows backward: a session whose stamps lag another
        # session's progress is clamped to engine-now (single-session
        # streams, the deterministic case, are never clamped).
        arrival = max(req.arrival_us, self.transport.now_us)
        if self.bridge is None or req.sync or req.spec.sync_only:
            await self._process_sync(req, writer, arrival)
            return
        token = self._next_token
        self._next_token += 1
        decision = self.bridge.submit(
            token, arrival, self._gen_factory(req.op, req.args)
        )
        await self._send_completions(decision.completions)
        if not decision.admitted:
            await self._write(writer, Response(
                id=req.id,
                status=STATUS_REJECTED,
                queue_depth=decision.queue_depth,
                arrival_us=arrival,
                done_us=arrival,
            ))
        else:
            self._inflight[token] = (writer, req)

    async def _process_sync(
        self, req: Request, writer: asyncio.StreamWriter, arrival: float
    ) -> None:
        """Closed-loop path: run the op to completion at its arrival and
        reply immediately — exactly what a LocalTransport call does."""
        if self.bridge is not None:
            await self._send_completions(self.bridge.drain_to(arrival))
        self.transport.advance_to(arrival)
        try:
            result = self.transport.call(
                req.op, *self._call_args(req.op, req.args)
            )
        except Exception as exc:  # noqa: BLE001 - delivered per-request
            await self._write(writer, Response(
                id=req.id,
                status=STATUS_ERROR,
                error=f"{type(exc).__name__}: {exc}",
                done_us=self.transport.now_us,
                arrival_us=arrival,
            ))
            return
        kind, value, done_us, io_reads, redo_bytes = _encode_result(
            req.op, result, self.transport.now_us
        )
        await self._write(writer, Response(
            id=req.id,
            status=STATUS_OK,
            kind=kind,
            value=value,
            done_us=done_us,
            arrival_us=arrival,
            io_reads=io_reads,
            redo_bytes=redo_bytes,
        ))

    def _call_args(self, op: str, args: List[Any]) -> List[Any]:
        """Wire args -> LocalTransport.call positional args."""
        if op == "bulk_load":
            table, rows = args
            return [table, [(key, bytes(value)) for key, value in rows]]
        if op == "archive_range":
            return [list(args[0])]
        return list(args)

    def _gen_factory(self, op: str, args: List[Any]):
        """Build the thunk the bridge spawns — mirrors the client-side
        ``*_proc`` dispatch (sharded select drops ro_index)."""
        transport = self.transport
        if op == "select":
            table, key, ro_index = args
            if transport.sharded:
                return lambda: transport.proc("select", table, key)
            return lambda: transport.proc(
                "select", table, key, ro_index=ro_index
            )
        frozen = list(args)
        return lambda: transport.proc(op, *frozen)

    async def _send_completions(
        self, completions: List[BridgeCompletion]
    ) -> None:
        for completion in completions:
            entry = self._inflight.pop(completion.token, None)
            if entry is None:
                continue
            writer, req = entry
            if completion.ok:
                kind, value, _, io_reads, redo_bytes = _encode_result(
                    req.op, completion.result, completion.done_us
                )
                response = Response(
                    id=req.id,
                    status=STATUS_OK,
                    kind=kind,
                    value=value,
                    done_us=completion.done_us,
                    arrival_us=completion.arrival_us,
                    io_reads=io_reads,
                    redo_bytes=redo_bytes,
                    queue_depth=completion.depth_at_admit,
                )
            else:
                exc = completion.error
                response = Response(
                    id=req.id,
                    status=STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    done_us=completion.done_us,
                    arrival_us=completion.arrival_us,
                    queue_depth=completion.depth_at_admit,
                )
            await self._write(writer, response)

    async def _write(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        """Frame and send one reply; a dead peer just drops it (its
        client-side futures fail on disconnect)."""
        if writer.is_closing():
            return
        try:
            writer.write(response.encode())
            await writer.drain()
            self._replies.inc()
        except (ConnectionError, OSError):
            pass


def _encode_result(
    op: str, result: Any, now_us: float
) -> Tuple[str, Any, float, int, int]:
    """Map one LocalTransport result object onto (kind, wire value,
    done_us, io_reads, redo_bytes)."""
    if op in ("insert", "update", "delete", "select", "range_select"):
        return ("op", result.value, result.done_us,
                result.io_reads, result.redo_bytes)
    if op in ("bulk_load", "checkpoint", "archive_range", "scrub"):
        return ("time", float(result), float(result), 0, 0)
    if op == "write_page":
        return ("commit", None, result.commit_us, 0, 0)
    if op == "read_page":
        return (
            "read",
            {"data": result.data, "cpu_us": result.cpu_us,
             "consolidated": result.consolidated},
            result.done_us,
            result.io_reads,
            0,
        )
    if op == "compression_ratio":
        return ("ratio", float(result), now_us, 0, 0)
    if op == "space":
        return ("space", [int(result[0]), int(result[1])], now_us, 0, 0)
    return ("none", None, now_us, 0, 0)  # create_table


class ServerThread:
    """A server running on its own asyncio loop in a daemon thread."""

    def __init__(self, server: PolarStoreServer) -> None:
        self.server = server
        self.addr: Optional[Tuple[str, int]] = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-net-serve", daemon=True
        )

    def start(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> Tuple[str, int]:
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.server.start(host, port), self._loop
        )
        self.addr = future.result(timeout=10.0)
        return self.addr

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()


def serve_in_thread(
    config: Optional[ReproConfig] = None,
    *,
    host: Optional[str] = None,
    port: int = 0,
    registry=None,
) -> ServerThread:
    """Start a server on a background thread; returns the running
    :class:`ServerThread` with ``.addr`` bound (ephemeral by default)."""
    handle = ServerThread(PolarStoreServer(config, registry=registry))
    handle.start(host, port)
    return handle


__all__ = [
    "PolarStoreServer",
    "ServerThread",
    "serve_in_thread",
]
