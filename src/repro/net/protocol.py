"""The PolarStore wire protocol: length-prefixed, CRC-checked frames.

Every message on a connection is one frame::

    +-------+---------+-------------+------------+------------------+
    | magic | version | payload_len | crc32      | payload          |
    | 2B PN | u8 = 1  | u32 LE      | u32 LE     | payload_len bytes|
    +-------+---------+-------------+------------+------------------+

The payload is one value in a small typed binary encoding (a tagged
subset of JSON plus real ``bytes``), and is always a dict describing a
:class:`Request` or :class:`Response`.  Decoding is strict in both
directions: a frame with a bad magic, an oversized length, or a CRC
mismatch raises :class:`FrameError`; a request whose op code is unknown
or whose argument count/types drift from the op's spec raises
:class:`ProtocolError`.  Truncation is not an error — the incremental
:class:`FrameDecoder` simply waits for more bytes — but a mid-stream
disconnect leaves any partial frame detectable via
:attr:`FrameDecoder.pending_bytes`.

Ops are numbered, typed, and cover the ``PolarStoreClient`` data-plane
surface; control ops (HELLO/PING/STATS/FLUSH) manage the session.  The
``seq`` field is the client-assigned per-session sequence number the
server uses to execute data ops in submission order regardless of how
frames interleave across pooled connections — the property that makes
the simulated side of a networked run deterministic.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ReproError

#: Frame header: magic, version, payload length, payload CRC32.
MAGIC = b"PN"
VERSION = 1
_HEADER = struct.Struct("<2sBII")

#: Default ceiling on one frame's payload (requests larger than this are
#: malformed or hostile; bulk loads should batch below it).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Request flags.
FLAG_SYNC = 0x01  # run the engine until this op completes, then reply

#: Response statuses.
STATUS_OK = 0
STATUS_REJECTED = 1  # admission control: in-flight window full
STATUS_ERROR = 2


class ProtocolError(ReproError):
    """A structurally valid frame with semantically invalid content."""


class FrameError(ProtocolError):
    """A malformed frame: bad magic, oversize, or CRC mismatch."""


# ---------------------------------------------------------------------------
# typed value codec
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_BIGINT = 0x08
_T_DICT = 0x09

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1
_U32 = struct.Struct("<I")
_Q = struct.Struct("<q")
_D = struct.Struct("<d")


def encode_value(value: Any, out: bytearray) -> None:
    """Append one tagged value to ``out`` (deterministic: dict keys are
    written in sorted order, so equal values encode to equal bytes)."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_INT64)
            out += _Q.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(_T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _D.pack(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise ProtocolError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out += _U32.pack(len(raw))
            out += raw
            encode_value(value[key], out)
    else:
        raise ProtocolError(
            f"unencodable value of type {type(value).__name__}: {value!r}"
        )


class _Reader:
    """Bounds-checked cursor over one payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError(
                f"payload truncated: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT64:
        return _Q.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        return int.from_bytes(reader.take(reader.u32()), "little", signed=True)
    if tag == _T_FLOAT:
        return _D.unpack(reader.take(8))[0]
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_STR:
        return reader.take(reader.u32()).decode("utf-8")
    if tag == _T_LIST:
        return [_decode_value(reader) for _ in range(reader.u32())]
    if tag == _T_DICT:
        count = reader.u32()
        doc: Dict[str, Any] = {}
        for _ in range(count):
            key = reader.take(reader.u32()).decode("utf-8")
            doc[key] = _decode_value(reader)
        return doc
    raise ProtocolError(f"unknown value tag 0x{tag:02x}")


def decode_value(payload: bytes) -> Any:
    """Decode exactly one value; trailing bytes are a protocol error."""
    reader = _Reader(payload)
    value = _decode_value(reader)
    if reader.pos != len(payload):
        raise ProtocolError(
            f"{len(payload) - reader.pos} trailing bytes after value"
        )
    return value


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def encode_frame(payload_value: Any) -> bytes:
    """One value -> one wire frame (header + CRC + typed payload)."""
    body = bytearray()
    encode_value(payload_value, body)
    payload = bytes(body)
    return (
        _HEADER.pack(MAGIC, VERSION, len(payload), zlib.crc32(payload))
        + payload
    )


class FrameDecoder:
    """Incremental frame reassembly: feed bytes, get whole payloads.

    Truncated input is not an error (the next ``feed`` may complete the
    frame); structurally bad input raises :class:`FrameError` and the
    decoder must be discarded — a stream that lost framing cannot be
    resynchronized.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes of an incomplete frame still waiting for more input."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[Any]:
        """Append ``data``; return every completed payload value."""
        self._buf += data
        out: List[Any] = []
        while True:
            if len(self._buf) < _HEADER.size:
                return out
            magic, version, length, crc = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise FrameError(
                    f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r})"
                )
            if version != VERSION:
                raise FrameError(
                    f"unsupported protocol version {version} "
                    f"(this side speaks {VERSION})"
                )
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"oversized frame: {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte ceiling"
                )
            end = _HEADER.size + length
            if len(self._buf) < end:
                return out
            payload = bytes(self._buf[_HEADER.size:end])
            del self._buf[:end]
            actual = zlib.crc32(payload)
            if actual != crc:
                raise FrameError(
                    f"frame CRC mismatch: header says 0x{crc:08x}, "
                    f"payload is 0x{actual:08x}"
                )
            out.append(decode_value(payload))


# ---------------------------------------------------------------------------
# ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpSpec:
    """One typed operation: its wire code and argument schema."""

    code: int
    name: str
    #: (arg_name, allowed python types) pairs, positional.
    args: Tuple[Tuple[str, tuple], ...]
    #: Control ops bypass the per-session sequencer entirely.
    control: bool = False
    #: Ops with no engine-native ``*_proc`` path always execute
    #: synchronously on the server, even when submitted pipelined.
    sync_only: bool = False


_BYTESLIKE = (bytes, bytearray)

#: The op table.  Codes are wire ABI: never renumber, only append.
OPS: Tuple[OpSpec, ...] = (
    OpSpec(1, "hello", (("session", (int,)), ("version", (int,))),
           control=True),
    OpSpec(2, "ping", (), control=True),
    OpSpec(3, "stats", (), control=True),
    OpSpec(4, "flush", ()),
    OpSpec(10, "create_table", (("table", (str,)),), sync_only=True),
    OpSpec(11, "insert", (("table", (str,)), ("key", (int,)),
                          ("value", _BYTESLIKE))),
    OpSpec(12, "update", (("table", (str,)), ("key", (int,)),
                          ("value", _BYTESLIKE))),
    OpSpec(13, "delete", (("table", (str,)), ("key", (int,)))),
    OpSpec(14, "select", (("table", (str,)), ("key", (int,)),
                          ("ro_index", (int,)))),
    OpSpec(15, "range_select", (("table", (str,)), ("low", (int,)),
                                ("high", (int,)))),
    OpSpec(16, "bulk_load", (("table", (str,)), ("rows", (list,))),
           sync_only=True),
    OpSpec(17, "checkpoint", (), sync_only=True),
    OpSpec(20, "write_page", (("page_no", (int,)), ("data", _BYTESLIKE)),
           sync_only=True),
    OpSpec(21, "read_page", (("page_no", (int,)),), sync_only=True),
    OpSpec(22, "archive_range", (("page_nos", (list,)),), sync_only=True),
    OpSpec(23, "scrub", (), sync_only=True),
    OpSpec(30, "compression_ratio", (), sync_only=True),
    OpSpec(31, "space", (), sync_only=True),
)

OPS_BY_NAME: Dict[str, OpSpec] = {spec.name: spec for spec in OPS}
OPS_BY_CODE: Dict[int, OpSpec] = {spec.code: spec for spec in OPS}


def check_args(spec: OpSpec, args: Iterable[Any]) -> List[Any]:
    """Validate positional args against the spec; returns them as a list."""
    args = list(args)
    if len(args) != len(spec.args):
        raise ProtocolError(
            f"op {spec.name!r} takes {len(spec.args)} args "
            f"({', '.join(name for name, _ in spec.args)}), got {len(args)}"
        )
    for (name, types), value in zip(spec.args, args):
        if not isinstance(value, types):
            allowed = "/".join(t.__name__ for t in types)
            raise ProtocolError(
                f"op {spec.name!r} arg {name!r} must be {allowed}, "
                f"got {type(value).__name__}"
            )
    return args


# ---------------------------------------------------------------------------
# request / response
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """One client->server operation."""

    id: int
    op: str
    args: List[Any] = field(default_factory=list)
    #: Per-session submission order; -1 for control ops (unsequenced).
    seq: int = -1
    session: int = 0
    #: Simulated arrival time the op is bridged onto the engine at.
    arrival_us: float = 0.0
    flags: int = 0

    @property
    def sync(self) -> bool:
        return bool(self.flags & FLAG_SYNC)

    @property
    def spec(self) -> OpSpec:
        return OPS_BY_NAME[self.op]

    def encode(self) -> bytes:
        spec = OPS_BY_NAME.get(self.op)
        if spec is None:
            raise ProtocolError(f"unknown op {self.op!r}")
        return encode_frame({
            "t": "q",
            "id": self.id,
            "op": spec.code,
            "args": check_args(spec, self.args),
            "seq": self.seq,
            "session": self.session,
            "arrival_us": float(self.arrival_us),
            "flags": self.flags,
        })

    @classmethod
    def from_payload(cls, doc: Any) -> "Request":
        if not isinstance(doc, dict) or doc.get("t") != "q":
            raise ProtocolError(f"not a request payload: {doc!r}")
        try:
            code = doc["op"]
            spec = OPS_BY_CODE.get(code)
            if spec is None:
                raise ProtocolError(f"unknown op code {code}")
            return cls(
                id=doc["id"],
                op=spec.name,
                args=check_args(spec, doc["args"]),
                seq=doc["seq"],
                session=doc["session"],
                arrival_us=float(doc["arrival_us"]),
                flags=doc["flags"],
            )
        except KeyError as exc:
            raise ProtocolError(f"request missing field {exc}") from None


@dataclass(frozen=True)
class Response:
    """One server->client reply, matched to its request by ``id``.

    ``done_us`` is the simulated completion time; ``arrival_us`` echoes
    the request so ``done_us - arrival_us`` is the simulated latency
    (queueing included).  ``queue_depth`` is the bridge's in-flight
    count observed at the op's simulated arrival — the admission-control
    signal, deterministic per seed.  ``kind`` names how ``value`` maps
    back onto a client-side result object.
    """

    id: int
    status: int = STATUS_OK
    kind: str = "none"
    value: Any = None
    done_us: float = 0.0
    arrival_us: float = 0.0
    io_reads: int = 0
    redo_bytes: int = 0
    queue_depth: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED

    @property
    def latency_us(self) -> float:
        return self.done_us - self.arrival_us

    def encode(self) -> bytes:
        return encode_frame({
            "t": "r",
            "id": self.id,
            "status": self.status,
            "kind": self.kind,
            "value": self.value,
            "done_us": float(self.done_us),
            "arrival_us": float(self.arrival_us),
            "io_reads": self.io_reads,
            "redo_bytes": self.redo_bytes,
            "queue_depth": self.queue_depth,
            "error": self.error,
        })

    @classmethod
    def from_payload(cls, doc: Any) -> "Response":
        if not isinstance(doc, dict) or doc.get("t") != "r":
            raise ProtocolError(f"not a response payload: {doc!r}")
        try:
            return cls(
                id=doc["id"],
                status=doc["status"],
                kind=doc["kind"],
                value=doc["value"],
                done_us=float(doc["done_us"]),
                arrival_us=float(doc["arrival_us"]),
                io_reads=doc["io_reads"],
                redo_bytes=doc["redo_bytes"],
                queue_depth=doc["queue_depth"],
                error=doc["error"],
            )
        except KeyError as exc:
            raise ProtocolError(f"response missing field {exc}") from None


def decode_message(payload: Any):
    """Payload value -> :class:`Request` or :class:`Response`."""
    if isinstance(payload, dict):
        tag = payload.get("t")
        if tag == "q":
            return Request.from_payload(payload)
        if tag == "r":
            return Response.from_payload(payload)
    raise ProtocolError(f"unrecognized message payload: {payload!r}")


__all__ = [
    "FLAG_SYNC",
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME_BYTES",
    "OPS",
    "OPS_BY_CODE",
    "OPS_BY_NAME",
    "OpSpec",
    "ProtocolError",
    "Request",
    "Response",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "check_args",
    "decode_message",
    "decode_value",
    "encode_frame",
    "encode_value",
]
