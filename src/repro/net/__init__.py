"""repro.net — PolarStore over real sockets.

The serving layer the paper's "cloud-native" framing implies: the
compression stack exists to serve fleets of database instances over a
network, and this package is the wire between them.

``repro.net.protocol``
    The length-prefixed binary wire protocol: CRC-checked frames, a
    typed value codec, and one numbered op per ``PolarStoreClient``
    operation.  A frame either decodes exactly or is rejected loudly
    (bad magic, oversize, CRC mismatch, arity drift).

``repro.net.server``
    The asyncio TCP front-end hosting one engine-bound store or
    cluster.  Wall-clock request arrival is bridged onto the
    deterministic engine through
    :class:`repro.engine.bridge.WallClockBridge`: requests enqueue as
    the engine processes, replies carry simulated latency plus real
    payload bytes, and the simulated outcome of a seeded request
    stream is byte-identical no matter how the wall clock jitters.

``repro.net.client``
    The pooled socket client: N connections, a bounded in-flight
    window with queue-full rejection (admission control), per-request
    timeouts, and backpressure.  :class:`SocketTransport` presents the
    same transport surface as in-process access, so
    ``PolarStore.connect(addr)`` returns the exact same
    :class:`~repro.api.client.PolarStoreClient` as
    ``PolarStore.open(config)``.

``repro.net.loadgen``
    Open-loop arrival-process load generation (Poisson / bursty /
    diurnal, seeded) whose latency percentiles, rejection counts, and
    queue depths export through ``repro.obs`` — the ``python -m repro
    load`` command.
"""

from repro.net.client import SocketPool, SocketTransport
from repro.net.loadgen import (
    ArrivalSpec,
    LoadReport,
    build_schedule,
    run_load,
)
from repro.net.protocol import (
    FrameDecoder,
    FrameError,
    ProtocolError,
    Request,
    Response,
    encode_frame,
)
from repro.net.server import PolarStoreServer, serve_in_thread

__all__ = [
    "ArrivalSpec",
    "FrameDecoder",
    "FrameError",
    "LoadReport",
    "PolarStoreServer",
    "ProtocolError",
    "Request",
    "Response",
    "SocketPool",
    "SocketTransport",
    "build_schedule",
    "encode_frame",
    "run_load",
    "serve_in_thread",
]
