"""Deterministic discrete-event concurrency engine.

``repro.engine`` is the kernel underneath the simulator's concurrent hot
path: an event heap keyed on ``(time_us, seq)``, generator-based
processes, and FIFO :class:`Resource`/:class:`Queue` primitives whose
wait times and depths feed :mod:`repro.obs`.  Devices, the storage
write path (group commit + pipelined replica fan-out), DB nodes, and
the sysbench driver all run as processes on one shared engine, so
thread scaling and saturation crossovers (Figs 12/13/15) emerge from
real queueing rather than analytic arithmetic.

:mod:`repro.engine.bridge` adds the serving-layer seam: a
:class:`WallClockBridge` that maps wall-clock request arrival onto
simulated time with a bounded, deterministically-evaluated admission
window (the ``repro.net`` server runs on it).
"""

from repro.engine.bridge import (
    BridgeCompletion,
    BridgeDecision,
    WallClockBridge,
)
from repro.engine.core import (
    Engine,
    EngineError,
    Event,
    Process,
    SleepUntil,
    Timeout,
)
from repro.engine.resources import Queue, Resource, ResourcePool

__all__ = [
    "BridgeCompletion",
    "BridgeDecision",
    "Engine",
    "EngineError",
    "Event",
    "Process",
    "Queue",
    "Resource",
    "ResourcePool",
    "SleepUntil",
    "Timeout",
    "WallClockBridge",
]
