"""Bridging wall-clock request arrival onto the deterministic engine.

The serving layer receives requests in *wall* time (sockets, threads,
kernel scheduling — all nondeterministic) but the engine only knows
*simulated* time.  :class:`WallClockBridge` is the seam: every request
carries a client-stamped simulated arrival time, and the bridge

1. **drains** the engine up to that arrival (firing the completions of
   earlier in-flight ops — their replies leave as a side effect),
2. **admits or rejects** the op against a bounded in-flight window
   measured at the simulated arrival instant (so rejection decisions
   depend only on the seeded request stream, never on socket timing),
3. **spawns** the op's engine process at its simulated arrival, where
   it overlaps with everything already in flight — group commit,
   device queueing, and CPU contention emerge across *network*
   requests exactly as they do across in-process sysbench clients.

Because arrivals are submitted in client sequence order and simulated
time only ever moves to the next arrival, the entire simulated outcome
— per-op latencies, queue depths, rejections — is a pure function of
the (seeded) request stream.  Wall-clock jitter changes only *when*
replies materialize, never *what* they say; the CI ``net-smoke`` job
double-runs a loopback load and diffs the simulated artifact bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.engine.core import Engine, Process


@dataclass(frozen=True)
class BridgeCompletion:
    """One finished op: its token, sim timings, and result (or error)."""

    token: int
    arrival_us: float
    done_us: float
    ok: bool
    result: Any = None
    error: Optional[BaseException] = None
    #: In-flight depth observed when this op was admitted.
    depth_at_admit: int = 0

    @property
    def latency_us(self) -> float:
        """Simulated end-to-end latency, queueing included."""
        return self.done_us - self.arrival_us


@dataclass(frozen=True)
class BridgeDecision:
    """Outcome of one :meth:`WallClockBridge.submit`."""

    admitted: bool
    #: Bridge in-flight depth at the op's simulated arrival (before it).
    queue_depth: int
    #: Ops that completed while draining up to this arrival.
    completions: List[BridgeCompletion]


class WallClockBridge:
    """Bounded in-flight window between a request stream and the engine.

    ``window`` is the admission limit: an op arriving (in simulated
    time) while ``window`` ops are already in flight is rejected, not
    queued — the open-loop serving policy (shed load, keep latency)
    rather than the closed-loop one (queue forever).  A rejected op
    never touches the engine.

    The bridge also keeps the serving layer's metric instruments and
    emits ``net`` flight-recorder events, all stamped with simulated
    time so dumps from a networked run replay deterministically.
    """

    def __init__(
        self,
        engine: Engine,
        window: int = 64,
        registry=None,
    ) -> None:
        if window < 1:
            raise ValueError(f"bridge window must be positive: {window}")
        self.engine = engine
        self.window = window
        self._inflight: Dict[int, tuple] = {}  # token -> (proc, arrival, depth)
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self._instruments = None
        if registry is not None:
            self._instruments = {
                "admitted": registry.counter("net.bridge.admitted"),
                "rejected": registry.counter("net.bridge.rejected"),
                "depth": registry.gauge("net.bridge.inflight"),
                "depth_hist": registry.histogram("net.bridge.queue_depth"),
                "latency": registry.histogram("net.bridge.request_us"),
            }

    # -- introspection -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Ops spawned into the engine and not yet completed."""
        return len(self._inflight)

    # -- the bridge --------------------------------------------------------

    def drain_to(
        self, limit_us: Optional[float] = None
    ) -> List[BridgeCompletion]:
        """Run the engine up to ``limit_us`` (or to idle) and collect
        every op that finished, in token order."""
        self.engine.run_until_idle(limit_us=limit_us)
        return self._collect()

    def submit(
        self,
        token: int,
        arrival_us: float,
        gen_factory: Callable[[], Generator],
    ) -> BridgeDecision:
        """Bridge one op arriving at simulated time ``arrival_us``.

        ``gen_factory`` builds the op's engine generator — called only
        if the op is admitted, so a rejected op costs nothing.  Tokens
        must be unique and submitted in nondecreasing arrival order
        (the per-session sequencer guarantees both).
        """
        if token in self._inflight:
            raise ValueError(f"duplicate bridge token {token}")
        completions = self.drain_to(arrival_us)
        depth = len(self._inflight)
        inst = self._instruments
        if inst is not None:
            inst["depth_hist"].record(depth)
        from repro.obs.events import recorder_active

        rec = recorder_active()
        if depth >= self.window:
            self.rejected += 1
            if inst is not None:
                inst["rejected"].inc()
            if rec is not None:
                rec.emit(arrival_us, "net", "reject", token=token,
                         depth=depth, window=self.window)
            return BridgeDecision(False, depth, completions)
        self.admitted += 1
        proc = self.engine.spawn(
            self._guard(gen_factory()),
            name=f"net-op-{token}",
            at_us=arrival_us,
        )
        self._inflight[token] = (proc, float(arrival_us), depth)
        if inst is not None:
            inst["admitted"].inc()
            inst["depth"].set(len(self._inflight))
        if rec is not None:
            rec.emit(arrival_us, "net", "admit", token=token, depth=depth)
        return BridgeDecision(True, depth, completions)

    def flush(self) -> List[BridgeCompletion]:
        """Run the engine to idle; every in-flight op completes."""
        return self.drain_to(None)

    # -- internals ---------------------------------------------------------

    def _guard(self, gen: Generator) -> Generator:
        """Wrap an op so failures become per-op results, not dead
        processes that poison the run loop, and so the completion time
        is captured at the instant the op finishes."""
        try:
            result = yield from gen
        except Exception as exc:  # noqa: BLE001 - delivered per-op
            return (False, exc, self.engine.now_us)
        return (True, result, self.engine.now_us)

    def _collect(self) -> List[BridgeCompletion]:
        done_tokens = [
            token for token, (proc, _, _) in self._inflight.items()
            if proc.done
        ]
        out: List[BridgeCompletion] = []
        from repro.obs.events import recorder_active

        rec = recorder_active()
        inst = self._instruments
        for token in sorted(done_tokens):
            proc, arrival_us, depth = self._inflight.pop(token)
            ok, payload, done_us = proc.value
            completion = BridgeCompletion(
                token=token,
                arrival_us=arrival_us,
                done_us=done_us,
                ok=ok,
                result=payload if ok else None,
                error=None if ok else payload,
                depth_at_admit=depth,
            )
            out.append(completion)
            self.completed += 1
            if inst is not None:
                if ok:
                    inst["latency"].record(completion.latency_us)
                inst["depth"].set(len(self._inflight))
            if rec is not None:
                rec.emit(done_us, "net", "complete", token=token, ok=ok,
                         latency_us=round(completion.latency_us, 3))
        return out


__all__ = ["BridgeCompletion", "BridgeDecision", "WallClockBridge"]
