"""Deterministic discrete-event kernel.

The simulator historically modeled contention with analytic
``Resource.busy_until`` arithmetic inside a synchronous call tree: every
request computed its own completion time and nothing ever *waited*.  That
reproduces single-request latency but cannot express emergent concurrency
phenomena — group commit batching, queue-depth buildup, background work
stealing idle device time — because no two requests are ever in flight at
once.

``Engine`` is the event kernel that makes those phenomena first-class:

* an event heap keyed on ``(time_us, seq)`` — the monotonically increasing
  ``seq`` makes simultaneous events fire in schedule order, so every run
  over the same inputs replays identically;
* generator-based :class:`Process`\\ es that ``yield`` commands (timeouts,
  events, other processes, resource requests) and are resumed by the
  kernel when the thing they wait for happens;
* :class:`Event` as the one synchronization primitive (processes join on
  it; resources and pipelines fire it).

Time never moves backwards: scheduling into the past clamps to *now*.
The kernel deliberately has no threads, no wall clock, and no randomness
of its own — determinism is a feature under test (see the CI determinism
job), not an accident.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

from repro.common.errors import ReproError


class EngineError(ReproError):
    """Misuse of the event kernel (bad yield, double fire, ...)."""


class Timeout:
    """Yieldable: resume the process after ``delay_us`` of simulated time."""

    __slots__ = ("delay_us",)

    def __init__(self, delay_us: float) -> None:
        if delay_us < 0:
            raise EngineError(f"negative timeout {delay_us}")
        self.delay_us = float(delay_us)


class SleepUntil:
    """Yieldable: resume the process at absolute time ``when_us`` (no-op
    if that moment already passed)."""

    __slots__ = ("when_us",)

    def __init__(self, when_us: float) -> None:
        self.when_us = float(when_us)


class Event:
    """A one-shot synchronization point.

    Processes wait on it by yielding it; whoever owns the event fires it
    with :meth:`succeed` (delivering a value) or :meth:`fail` (raising an
    exception inside every waiter).  Waiters are woken through the event
    heap, so wake order is deterministic.
    """

    __slots__ = ("engine", "name", "_fired", "_value", "_error", "_waiters")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    def succeed(self, value: Any = None) -> None:
        if self._fired:
            raise EngineError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        for proc in self._waiters:
            self.engine.schedule(self.engine.now_us, proc._step, value)
        self._waiters.clear()

    def fail(self, error: BaseException) -> None:
        if self._fired:
            raise EngineError(f"event {self.name!r} fired twice")
        self._fired = True
        self._error = error
        for proc in self._waiters:
            self.engine.schedule(
                self.engine.now_us, proc._step, None, error
            )
        self._waiters.clear()

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self.engine.schedule(
                self.engine.now_us, proc._step, self._value, self._error
            )
        else:
            self._waiters.append(proc)


class Process:
    """One concurrent activity, driven by a generator.

    The generator yields :class:`Timeout`, :class:`SleepUntil`,
    :class:`Event`, another :class:`Process` (join), or a resource request
    (see :mod:`repro.engine.resources`); its ``return`` value becomes
    :attr:`value` and is delivered to joiners.  An uncaught exception is
    delivered to joiners, or surfaces from the engine's run loop if nobody
    joined — a silent dead process would corrupt the simulation.
    """

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = False
        self.cancelled = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: List["Process"] = []
        self._error_delivered = False

    def cancel(self) -> None:
        """Stop a (typically daemon) process; it never resumes."""
        self.cancelled = True
        self.done = True
        self.gen.close()

    def _finish(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self.done = True
        self.value = value
        self.error = error
        engine = self.engine
        if error is not None:
            if self._joiners:
                self._error_delivered = True
                for proc in self._joiners:
                    engine.schedule(engine.now_us, proc._step, None, error)
            else:
                engine._dead.append(self)
        else:
            for proc in self._joiners:
                engine.schedule(engine.now_us, proc._step, value)
        self._joiners.clear()

    def _add_joiner(self, proc: "Process") -> None:
        engine = self.engine
        if self.done:
            if self.error is not None:
                self._error_delivered = True
                if self in engine._dead:
                    engine._dead.remove(self)
                engine.schedule(engine.now_us, proc._step, None, self.error)
            else:
                engine.schedule(engine.now_us, proc._step, self.value)
        else:
            self._joiners.append(proc)

    def _step(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        if self.done or self.cancelled:
            return
        try:
            if error is not None:
                cmd = self.gen.throw(error)
            else:
                cmd = self.gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - delivered to joiners
            self._finish(error=exc)
            return
        engine = self.engine
        if isinstance(cmd, Timeout):
            engine.schedule(engine.now_us + cmd.delay_us, self._step)
        elif isinstance(cmd, SleepUntil):
            engine.schedule(cmd.when_us, self._step)
        elif isinstance(cmd, Event):
            cmd._add_waiter(self)
        elif isinstance(cmd, Process):
            cmd._add_joiner(self)
        else:
            enqueue = getattr(cmd, "_engine_enqueue", None)
            if enqueue is None:
                self._finish(error=EngineError(
                    f"process {self.name!r} yielded unsupported {cmd!r}"
                ))
                return
            enqueue(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


class Engine:
    """The discrete-event kernel: one heap, one clock, many processes."""

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = float(start_us)
        self._heap: List[Tuple[float, int, Callable, tuple]] = []
        self._seq = 0
        #: Processes that died with an exception nobody joined; surfaced
        #: by the run loops so failures cannot pass silently.
        self._dead: List[Process] = []

    # -- time ------------------------------------------------------------

    @property
    def now_us(self) -> float:
        return self._now_us

    @property
    def now_s(self) -> float:
        return self._now_us / 1e6

    def advance_to(self, when_us: float) -> float:
        """Move idle time forward (no-op if already later)."""
        if when_us > self._now_us:
            self._now_us = when_us
        return self._now_us

    # -- yieldable factories ----------------------------------------------

    def timeout(self, delay_us: float) -> Timeout:
        return Timeout(delay_us)

    def sleep_until(self, when_us: float) -> SleepUntil:
        return SleepUntil(when_us)

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    # -- scheduling -------------------------------------------------------

    def schedule(self, when_us: float, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` at ``when_us`` (clamped to *now*: simulated
        time never flows backwards)."""
        if when_us < self._now_us:
            when_us = self._now_us
        self._seq += 1
        heapq.heappush(self._heap, (float(when_us), self._seq, fn, args))

    def spawn(
        self, gen: Generator, name: str = "", at_us: Optional[float] = None
    ) -> Process:
        """Register a generator as a concurrent process; it takes its
        first step at ``at_us`` (default: immediately)."""
        proc = Process(self, gen, name)
        self.schedule(self._now_us if at_us is None else at_us, proc._step)
        return proc

    # -- run loops ---------------------------------------------------------

    def _dispatch_one(self) -> None:
        when_us, _seq, fn, args = heapq.heappop(self._heap)
        if when_us > self._now_us:
            self._now_us = when_us
        fn(*args)

    def _raise_dead(self) -> None:
        for proc in self._dead:
            if not proc._error_delivered:
                proc._error_delivered = True
                self._dead = [
                    p for p in self._dead if p is not proc
                ]
                raise proc.error

    def run_until_idle(self, limit_us: Optional[float] = None) -> float:
        """Drain the heap (optionally stopping once *now* passes
        ``limit_us``); returns the final simulated time."""
        while self._heap:
            if limit_us is not None and self._heap[0][0] > limit_us:
                break
            self._dispatch_one()
            self._raise_dead()
        return self._now_us

    def run_until_complete(self, procs: Sequence[Process]) -> float:
        """Dispatch events until every process in ``procs`` finished.
        Daemon processes may still hold scheduled events afterwards."""
        pending = list(procs)
        while self._heap:
            pending = [p for p in pending if not p.done]
            if not pending:
                break
            self._dispatch_one()
            self._raise_dead()
        for proc in procs:
            if proc.error is not None and not proc._error_delivered:
                proc._error_delivered = True
                raise proc.error
        return self._now_us

    def run(self, gen: Generator, name: str = "", at_us: Optional[float] = None):
        """Spawn ``gen`` and drive the engine until it completes; returns
        the process's return value (exceptions propagate)."""
        proc = self.spawn(gen, name=name, at_us=at_us)
        self.run_until_complete([proc])
        if not proc.done:
            raise EngineError(
                f"process {proc.name!r} never completed (deadlock: heap "
                "drained while it still waits)"
            )
        return proc.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Engine(now_us={self._now_us:.1f}, "
            f"pending={len(self._heap)})"
        )
