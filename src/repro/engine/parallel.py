"""Multi-core deterministic scale-out: engine workers + epoch barriers.

The simulator's determinism contract — same seed, same bytes — survived
PR 5's wall-clock fast path because compression results are values: *what*
a codec returns never depends on *when* the pool computes it.  This
module extends the same contract across processes.  A
:class:`ParallelEngineGroup` forks worker processes over anonymous pipes
(fork, so workers inherit the parent's whole program state and nothing
needs to be importable or picklable except requests and replies), and two
layers build on it:

* **Program fan-out** (:meth:`ParallelEngineGroup.run_programs`): N
  independent simulation programs — separate engine universes that share
  no simulated state, like the Fig 10/11 scheduler legs or the Fig 12
  cluster-config cells — are partitioned round-robin across workers, each
  worker runs its programs on its own deterministic event heap, and
  results come back indexed so assembly order never depends on wall-clock
  finish order.

* **Conservative epoch synchronization** (:class:`ParallelEngine` +
  :class:`RemoteCall`): one coordinator engine drives the control-plane
  heap while shard state lives in workers (``repro.cluster.parallel``).
  A cross-shard operation issued at simulated time ``t`` with a certified
  latency floor ``L`` (the *lookahead*) may only take effect at some
  ``t' >= t + L``; until the reply lands, the coordinator dispatches only
  events strictly before the barrier ``min(t_i + L_i)`` over outstanding
  calls — the classic conservative-PDES lookahead window.  Replies are
  re-heaped with the sequence number *reserved at issue time*, so the
  merged execution order under the global ``(time_us, seq)`` key is the
  one the serial engine would have produced.  The floor is not trusted:
  :meth:`ParallelEngine.deliver` re-checks every reply against its
  certificate and raises instead of silently diverging.

Observability merges deterministically at barriers: metric snapshots fold
order-independently (``MetricsRegistry.merge_state``, backed by the
sorted-key/``math.fsum`` histogram merge), flight-recorder rings merge by
``(t_us, worker_id, position)`` with the stable worker-id tiebreak, and
SLO evaluator state concatenates the same way.
"""

from __future__ import annotations

import heapq
import math
import os
import pickle
import select
import struct
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.engine.core import Engine, EngineError, Process

__all__ = [
    "ParallelError",
    "WorkerProcess",
    "ParallelEngineGroup",
    "RemoteCall",
    "ParallelEngine",
    "workers_from_env",
    "available_cpus",
    "merge_metrics_states",
    "merge_event_streams",
    "merge_slo_states",
]

#: Wire framing for the pipe channels: payload length prefix.
_FRAME = struct.Struct("<I")

#: Environment variable honored by every CLI entry point (REPRO_PERF /
#: REPRO_OBS pattern): ``REPRO_WORKERS=4`` is equivalent to ``--workers 4``.
WORKERS_ENV = "REPRO_WORKERS"


class ParallelError(RuntimeError):
    """A worker process failed; carries the remote traceback text."""


def available_cpus() -> int:
    """Usable CPU count (cgroup/affinity aware where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def workers_from_env(env=None) -> Optional[int]:
    """``REPRO_WORKERS`` as an int, ``None`` when unset/empty."""
    raw = (os.environ if env is None else env).get(WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"{WORKERS_ENV} must be an integer: {raw!r}") from exc
    if value < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1: {value}")
    return value


# ---------------------------------------------------------------------------
# Pipe plumbing


def _write_frame(fd: int, obj: Any) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _FRAME.pack(len(blob)) + blob
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    while count:
        chunk = os.read(fd, count)
        if not chunk:
            raise EOFError("worker pipe closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _read_frame(fd: int) -> Any:
    (length,) = _FRAME.unpack(_read_exact(fd, _FRAME.size))
    return pickle.loads(_read_exact(fd, length))


class WorkerProcess:
    """One forked request server: FIFO requests in, FIFO replies out.

    The child is built *after* the fork by ``service_factory(worker_id)``
    — closures capture whatever parent state the worker needs (programs,
    configs, stores) without any pickling.  Requests are
    ``(op, payload)``; the service returns a picklable value.  Replies
    preserve request order, which the synchronization layer relies on:
    a blocking call only needs to drain its worker's pipe until its own
    reply appears, resolving earlier asynchronous replies on the way.
    """

    def __init__(self, worker_id: int,
                 service_factory: Callable[[int], Callable[[str, Any], Any]]):
        self.worker_id = worker_id
        req_r, req_w = os.pipe()
        rep_r, rep_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            status = 0
            try:
                os.close(req_w)
                os.close(rep_r)
                self._serve(req_r, rep_w, service_factory)
            except BaseException:  # noqa: BLE001 - child must never unwind
                traceback.print_exc()
                status = 1
            finally:
                # _exit: no atexit hooks, no inherited buffer double-flush.
                os._exit(status)
        os.close(req_r)
        os.close(rep_w)
        self.pid = pid
        self._req_fd = req_w
        self._rep_fd = rep_r
        self._alive = True
        #: Requests sent minus replies received (FIFO depth).
        self.inflight = 0

    def _serve(self, req_fd: int, rep_fd: int, factory) -> None:
        service = factory(self.worker_id)
        while True:
            try:
                request = _read_frame(req_fd)
            except EOFError:
                break
            if request is None:  # shutdown sentinel
                break
            op, payload = request
            try:
                _write_frame(rep_fd, (True, service(op, payload)))
            except BaseException:  # noqa: BLE001 - shipped to the parent
                _write_frame(rep_fd, (False, traceback.format_exc()))

    # -- parent side -------------------------------------------------------

    def request(self, op: str, payload: Any = None) -> None:
        _write_frame(self._req_fd, (op, payload))
        self.inflight += 1

    def reply_ready(self) -> bool:
        ready, _, _ = select.select([self._rep_fd], [], [], 0)
        return bool(ready)

    def next_reply(self) -> Any:
        """Block for the next reply; raises :class:`ParallelError` on a
        remote failure (with the worker's traceback inlined)."""
        ok, value = _read_frame(self._rep_fd)
        self.inflight -= 1
        if not ok:
            raise ParallelError(
                f"worker {self.worker_id} failed:\n{value}"
            )
        return value

    def fileno(self) -> int:
        return self._rep_fd

    def close(self) -> None:
        if not self._alive:
            return
        self._alive = False
        try:
            _write_frame(self._req_fd, None)
        except OSError:  # pragma: no cover - worker already gone
            pass
        os.close(self._req_fd)
        os.close(self._rep_fd)
        os.waitpid(self.pid, 0)

    def __enter__(self) -> "WorkerProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ParallelEngineGroup:
    """A fixed fleet of :class:`WorkerProcess` request servers.

    Construction forks the workers; :meth:`close` (or the context
    manager) reaps them.  :meth:`run_programs` is the coarse-grained
    entry point; ``repro.cluster.parallel`` drives the same fleet at
    per-operation granularity through :class:`ParallelEngine`.
    """

    def __init__(self, workers: int,
                 service_factory: Callable[[int], Callable[[str, Any], Any]]):
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.workers: List[WorkerProcess] = [
            WorkerProcess(i, service_factory) for i in range(workers)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ParallelEngineGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def broadcast(self, op: str, payload: Any = None) -> List[Any]:
        """Send ``op`` to every worker, gather replies in worker order.

        This is the group's barrier primitive: it returns only once every
        worker has drained its request FIFO up to and including ``op``,
        so after a broadcast the fleet is mutually quiescent — the merge
        points (snapshot, teardown) ride on it.
        """
        for worker in self.workers:
            worker.request(op, payload)
        return [worker.next_reply() for worker in self.workers]

    # -- program fan-out ---------------------------------------------------

    @staticmethod
    def run_programs(
        programs: Sequence[Callable[[], Any]],
        workers: int,
        setup: Optional[Callable[[int], None]] = None,
    ) -> List[Any]:
        """Run independent simulation programs across worker processes.

        ``programs[i]`` runs on worker ``i % workers`` (deterministic
        assignment); each worker executes its programs in index order on
        its own event heap; results return indexed, so the output list is
        identical to ``[p() for p in programs]`` regardless of which
        worker finished first.  ``setup(worker_id)`` runs once per worker
        after the fork (seed per-worker globals there).  With one worker
        (or one program) everything runs inline — no forks, byte-for-byte
        the serial path.
        """
        programs = list(programs)
        workers = max(1, min(int(workers), len(programs)))
        if workers <= 1:
            if setup is not None:
                setup(0)
            return [program() for program in programs]

        def factory(worker_id: int):
            if setup is not None:
                setup(worker_id)

            def service(op: str, payload: Any) -> Any:
                if op != "run":  # pragma: no cover - single-op protocol
                    raise ValueError(f"unknown op {op!r}")
                return programs[payload]()

            return service

        results: List[Any] = [None] * len(programs)
        with ParallelEngineGroup(workers, factory) as group:
            queues: Dict[int, List[int]] = {
                w.worker_id: [] for w in group.workers
            }
            for index in range(len(programs)):
                worker = group.workers[index % workers]
                worker.request("run", index)
                queues[worker.worker_id].append(index)
            # Replies are FIFO per worker; read whichever pipe is ready so
            # a slow program on one worker never blocks collecting others.
            remaining = {w.fileno(): w for w in group.workers if w.inflight}
            while remaining:
                ready, _, _ = select.select(list(remaining), [], [])
                for fd in ready:
                    worker = remaining[fd]
                    index = queues[worker.worker_id].pop(0)
                    results[index] = worker.next_reply()
                    if not worker.inflight:
                        del remaining[fd]
        return results


# ---------------------------------------------------------------------------
# Conservative epoch synchronization


class RemoteCall:
    """A yieldable for work executing in a worker process.

    Created by :meth:`ParallelEngine.remote` at issue time, which
    *reserves the event sequence number the serial engine would have
    assigned* to the operation's completion.  When the worker's reply
    arrives, :meth:`ParallelEngine.deliver` re-heaps the waiting process
    at ``(time_of(reply), reserved_seq)`` — the global ordering key —
    after checking the reply against the lookahead certificate.
    """

    __slots__ = ("engine", "issue_us", "lookahead_us", "time_of", "label",
                 "seq", "_proc")

    def __init__(self, engine: "ParallelEngine", lookahead_us: float,
                 time_of: Callable[[Any], float], label: str = ""):
        self.engine = engine
        self.issue_us = engine.now_us
        self.lookahead_us = float(lookahead_us)
        self.time_of = time_of
        self.label = label
        self.seq: Optional[int] = None
        self._proc: Optional[Process] = None

    def _engine_enqueue(self, proc: Process) -> None:
        self._proc = proc
        self.engine._register_remote(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RemoteCall({self.label!r}, issued={self.issue_us:.1f}, "
            f"lookahead={self.lookahead_us:.1f})"
        )


class ParallelEngine(Engine):
    """The coordinator engine: one control heap + a lookahead horizon.

    Identical to :class:`Engine` until a process yields a
    :class:`RemoteCall`.  From then on the run loops dispatch only events
    strictly before ``horizon_us = min(issue + lookahead)`` over
    outstanding calls; at the horizon they stall and pump worker replies
    (``reply_pump``, attached by the owning runtime) until the blocking
    call resolves.  Strictness matters: an event at exactly the horizon
    could tie with a pending completion, and ties are broken by sequence
    number — which the completion reserved first.
    """

    def __init__(self, start_us: float = 0.0):
        super().__init__(start_us)
        self._outstanding: List[RemoteCall] = []
        #: Attached by the runtime: ``reply_pump(block)`` reads worker
        #: pipes and routes completions into :meth:`deliver`.
        self.reply_pump: Optional[Callable[[bool], None]] = None
        #: Times the run loop hit the horizon and blocked on replies.
        self.stalls = 0

    # -- remote calls ------------------------------------------------------

    def remote(self, lookahead_us: float,
               time_of: Callable[[Any], float], label: str = "") -> RemoteCall:
        if lookahead_us < 0:
            raise EngineError(f"lookahead cannot be negative: {lookahead_us}")
        return RemoteCall(self, lookahead_us, time_of, label)

    def _register_remote(self, call: RemoteCall) -> None:
        # Reserve the completion's sequence number *now*: this is the seq
        # the serial engine would hand the sleep-until-commit wakeup it
        # schedules at issue time.
        self._seq += 1
        call.seq = self._seq
        self._outstanding.append(call)

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def horizon_us(self) -> float:
        """The conservative dispatch bound (inf when nothing is remote)."""
        if not self._outstanding:
            return math.inf
        return min(c.issue_us + c.lookahead_us for c in self._outstanding)

    def deliver(self, call: RemoteCall, value: Any) -> None:
        """A worker reply arrived: re-heap the waiting process.

        Validates the lookahead certificate — a completion earlier than
        ``issue + lookahead`` means the configured floor overstated the
        minimum cross-shard latency, and events may already have been
        dispatched that serial would have ordered after this one.  That
        is a determinism violation, so it raises instead of proceeding.
        """
        try:
            self._outstanding.remove(call)
        except ValueError:
            raise EngineError(f"{call!r} is not outstanding")
        when_us = float(call.time_of(value))
        if when_us < call.issue_us + call.lookahead_us - 1e-9:
            raise EngineError(
                f"lookahead certificate violated: {call.label or 'remote'} "
                f"completed at {when_us:.3f}us but was issued at "
                f"{call.issue_us:.3f}us with lookahead "
                f"{call.lookahead_us:.3f}us; lower parallel.lookahead_us"
            )
        if when_us < self._now_us - 1e-9:  # pragma: no cover - guarded above
            raise EngineError(
                f"remote completion in the past: {when_us:.3f}us < "
                f"now {self._now_us:.3f}us"
            )
        assert call._proc is not None and call.seq is not None
        heapq.heappush(
            self._heap, (max(when_us, self._now_us), call.seq,
                         call._proc._step, (value,))
        )

    def _pump(self, block: bool) -> None:
        if self.reply_pump is None:
            raise EngineError(
                "remote calls outstanding but no reply pump attached"
            )
        if block:
            self.stalls += 1
        self.reply_pump(block)

    # -- run loops ---------------------------------------------------------

    def run_until_idle(self, limit_us: Optional[float] = None) -> float:
        while self._heap or self._outstanding:
            if self._outstanding:
                self._pump(False)
            horizon = self.horizon_us()
            head = self._heap[0][0] if self._heap else math.inf
            if head < horizon and (limit_us is None or head <= limit_us):
                self._dispatch_one()
                self._raise_dead()
            elif self._outstanding and (
                limit_us is None or horizon <= limit_us
            ):
                self._pump(True)
            else:
                break
        return self._now_us

    def run_until_complete(self, procs: Sequence[Process]) -> float:
        pending = list(procs)
        while True:
            pending = [p for p in pending if not p.done]
            if not pending:
                break
            if self._outstanding:
                self._pump(False)
            horizon = self.horizon_us()
            if self._heap and self._heap[0][0] < horizon:
                self._dispatch_one()
                self._raise_dead()
            elif self._outstanding:
                self._pump(True)
            else:
                break
        for proc in procs:
            if proc.error is not None and not proc._error_delivered:
                proc._error_delivered = True
                raise proc.error
        return self._now_us


# ---------------------------------------------------------------------------
# Deterministic observability merges


def merge_metrics_states(registry, states: Iterable[Iterable[Dict]]) -> None:
    """Fold per-worker ``MetricsRegistry.state()`` captures into one
    registry.  A single grouped pass (``MetricsRegistry.merge_states``):
    every instrument's float sum reduces with one correctly-rounded
    ``math.fsum`` over all workers, so the merge is bit-identical under
    any permutation of the captures — worker order is a convention here,
    not a correctness requirement."""
    registry.merge_states(states)


def merge_event_streams(streams: Sequence[Sequence]) -> List:
    """Merge per-worker flight-recorder rings into one ordered stream.

    ``streams[w]`` is worker ``w``'s retained ring, oldest first.  Events
    merge by ``(t_us, worker_id, position)``: simulated time first, then
    the stable worker-id tiebreak (a worker's events at one instant stay
    contiguous and workers always interleave the same way), then ring
    position (each worker's own order is already deterministic).
    """
    keyed = (
        ((ev.t_us, worker_id, pos), ev)
        for worker_id, stream in enumerate(streams)
        for pos, ev in enumerate(stream)
    )
    return [ev for _key, ev in sorted(keyed, key=lambda item: item[0])]


def merge_slo_states(evaluator, states: Sequence[Dict]) -> None:
    """Fold per-worker SLO evaluator captures into ``evaluator``.

    Each capture is ``{"history": {spec: [(t_us, value, ok), ...]},
    "evaluations": n, "alerts": n}`` (see
    ``repro.cluster.parallel._capture_slo``).  History points merge by
    ``(t_us, worker_id, position)`` like event streams; the counters add.
    """
    merged: Dict[str, List] = {}
    for worker_id, state in enumerate(states):
        for name, points in state.get("history", {}).items():
            bucket = merged.setdefault(name, [])
            for pos, point in enumerate(points):
                bucket.append(((float(point[0]), worker_id, pos), point))
        evaluator.evaluations += int(state.get("evaluations", 0))
        evaluator.alerts += int(state.get("alerts", 0))
    from collections import deque

    for name in sorted(merged):
        target = evaluator.history.setdefault(
            name, deque(maxlen=evaluator.history_limit)
        )
        for _key, point in sorted(merged[name], key=lambda item: item[0]):
            target.append(tuple(point))
