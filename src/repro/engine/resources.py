"""Queueing primitives for the event kernel.

:class:`Resource` is a ``k``-server FIFO queue that supports **two call
styles over one shared state**:

* the **engine-native** style — a process yields through
  :meth:`Resource.process`; it really waits in the FIFO list, is granted a
  server by an event, and occupies it for its service time.  Queue waits,
  depths, and utilization are measured, and batching/saturation effects
  emerge from genuine interleaving;
* the **analytic adapter** — :meth:`Resource.serve` is the legacy
  ``max(start, busy_until) + service`` arithmetic of
  :class:`repro.common.clock.Resource`.  It updates the *same* per-server
  ``free_at`` state, so synchronous legacy code paths and engine processes
  queue against each other consistently.

The two styles are timing-equivalent for a single client (the
analytic-equivalence property covered by ``tests/engine``): an engine
process arriving at an idle resource starts at ``max(now, free_at)`` and
finishes ``service_us`` later, exactly like ``serve``.

Observability: :meth:`Resource.bind_metrics` publishes per-resource
``engine.resource.queue_wait_us`` histograms plus utilization / queue
depth / in-flight gauges through a :class:`repro.obs.metrics
.MetricsRegistry`, which is how device saturation shows up in
``python -m repro metrics``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.engine.core import Engine, EngineError, Event


@dataclass(frozen=True)
class _ServerView:
    """Read-only view of one server (legacy ``pool.servers`` shape)."""

    name: str
    busy_until_us: float


class Resource:
    """``k`` identical servers fronted by one FIFO wait list.

    ``servers`` models internal parallelism — NAND channels, CPU cores,
    replica streams; it is the resource's *queue depth*: at most that many
    requests are in service, the rest wait in arrival order.
    """

    def __init__(
        self,
        name: str = "resource",
        servers: int = 1,
        engine: Optional[Engine] = None,
    ) -> None:
        if servers <= 0:
            raise ValueError(f"need at least one server, got {servers}")
        self.name = name
        self.engine = engine
        self._free_at: List[float] = [0.0] * servers
        # FIFO wait list: (grant event, arrival time, service time).
        self._waiters: Deque[Tuple[Event, float, float]] = deque()
        self._redispatch_at: Optional[float] = None
        self.total_busy_us = 0.0
        self.total_wait_us = 0.0
        self.completed = 0
        self.waited = 0
        self._last_active_us = 0.0
        self._wait_hist = None

    # -- construction helpers ---------------------------------------------

    def bind_engine(self, engine: Engine, servers: Optional[int] = None) -> None:
        """Attach (or re-attach) the event kernel; optionally resize the
        server count (queue depth).  Resize only between runs — in-flight
        grants are not migrated."""
        self.engine = engine
        if servers is not None:
            self.set_servers(servers)

    def set_servers(self, servers: int) -> None:
        if servers <= 0:
            raise ValueError(f"need at least one server, got {servers}")
        current = len(self._free_at)
        if servers > current:
            # New servers become available no earlier than the present.
            now = self.engine.now_us if self.engine is not None else 0.0
            self._free_at.extend([now] * (servers - current))
        elif servers < current:
            self._free_at = sorted(self._free_at)[:servers]

    def bind_metrics(self, registry, **labels) -> None:
        """Publish queue-wait histograms and saturation gauges."""
        labels.setdefault("resource", self.name)
        self._wait_hist = registry.histogram(
            "engine.resource.queue_wait_us", **labels
        )
        registry.gauge_fn(
            "engine.resource.utilization", self.utilization_observed, **labels
        )
        registry.gauge_fn(
            "engine.resource.queue_depth", lambda: float(self.queue_depth),
            **labels,
        )
        registry.gauge_fn(
            "engine.resource.busy_us", lambda: self.total_busy_us, **labels
        )
        registry.gauge_fn(
            "engine.resource.servers",
            lambda: float(len(self._free_at)), **labels,
        )

    # -- introspection -----------------------------------------------------

    @property
    def servers(self) -> List[_ServerView]:
        return [
            _ServerView(f"{self.name}[{i}]", t)
            for i, t in enumerate(self._free_at)
        ]

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting (not yet in service)."""
        return len(self._waiters)

    @property
    def busy_until_us(self) -> float:
        """When the last queued work drains."""
        return max(self._free_at)

    @property
    def next_free_us(self) -> float:
        return min(self._free_at)

    def utilization(self, elapsed_us: float) -> float:
        """Fraction of ``servers * elapsed_us`` spent busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(
            1.0, self.total_busy_us / (elapsed_us * len(self._free_at))
        )

    def utilization_observed(self) -> float:
        """Utilization over the resource's observed active span."""
        span = self._last_active_us
        if self.engine is not None:
            span = max(span, self.engine.now_us)
        return self.utilization(span)

    # -- analytic adapter --------------------------------------------------

    def serve(self, start_us: float, service_us: float) -> float:
        """Legacy synchronous path: queue a request arriving at
        ``start_us`` needing ``service_us``; return its completion time.

        Exactly the pre-engine ``Resource.serve`` arithmetic, operating on
        the same ``free_at`` state the engine-native path uses — so a
        synchronous call from inside an engine run still occupies the
        queue that concurrent processes wait on.
        """
        if service_us < 0:
            raise ValueError(f"negative service time {service_us}")
        idx = min(range(len(self._free_at)), key=self._free_at.__getitem__)
        begin = max(start_us, self._free_at[idx])
        end = begin + service_us
        self._free_at[idx] = end
        self._account(begin - start_us, service_us, end)
        return end

    def _account(self, wait_us: float, service_us: float, end_us: float) -> None:
        self.total_busy_us += service_us
        self.completed += 1
        self._last_active_us = max(self._last_active_us, end_us)
        if wait_us > 0:
            self.total_wait_us += wait_us
            self.waited += 1
        if self._wait_hist is not None:
            self._wait_hist.record(max(wait_us, 0.0))

    # -- engine-native path -------------------------------------------------

    def process(self, service_us: float):
        """Generator: wait FIFO for a server, hold it ``service_us``,
        return the completion time.  Yields through the event kernel, so
        other processes interleave while this one waits or is served."""
        if self.engine is None:
            raise EngineError(
                f"resource {self.name!r} is not bound to an engine"
            )
        if service_us < 0:
            raise ValueError(f"negative service time {service_us}")
        engine = self.engine
        arrive = engine.now_us
        grant = engine.event(f"{self.name}.grant")
        self._waiters.append((grant, arrive, float(service_us)))
        self._dispatch()
        begin = yield grant
        # Service occupancy was booked at grant time (the server's
        # free_at already covers it); the process now lives through it.
        if begin + service_us > engine.now_us:
            yield engine.sleep_until(begin + service_us)
        return engine.now_us

    def _dispatch(self) -> None:
        engine = self.engine
        now = engine.now_us
        while self._waiters:
            idx = min(
                range(len(self._free_at)), key=self._free_at.__getitem__
            )
            free = self._free_at[idx]
            if free > now:
                # Earliest server frees in the future; wake up then.  (A
                # single pending wake-up suffices: dispatch re-evaluates.)
                if self._redispatch_at is None or self._redispatch_at > free:
                    self._redispatch_at = free
                    engine.schedule(free, self._redispatch)
                return
            grant, arrive, service_us = self._waiters.popleft()
            self._free_at[idx] = now + service_us
            self._account(now - arrive, service_us, now + service_us)
            grant.succeed(now)

    def _redispatch(self) -> None:
        self._redispatch_at = None
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, servers={len(self._free_at)}, "
            f"waiting={len(self._waiters)}, "
            f"busy_until={self.busy_until_us:.1f})"
        )


class ResourcePool(Resource):
    """Alias shape of the legacy ``clock.ResourcePool``: ``k`` identical
    servers, earliest-free dispatch — now with a real shared FIFO wait
    list in engine-native mode."""

    def __init__(
        self, name: str, servers: int, engine: Optional[Engine] = None
    ) -> None:
        super().__init__(name, servers=servers, engine=engine)


class Queue:
    """Unbounded FIFO item queue between processes.

    Producers :meth:`put` synchronously; consumers yield :meth:`get` and
    wake in arrival order as items land.  This is the primitive behind
    batching stages (group commit drains whatever arrived while the
    previous flush was in flight).
    """

    def __init__(self, engine: Engine, name: str = "queue") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque = deque()
        self._getters: Deque[Event] = deque()
        self.total_put = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item) -> None:
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        self._items.append(item)
        self.max_depth = max(self.max_depth, len(self._items))

    def get(self) -> Event:
        """Yieldable: resolves with the next item (FIFO both ways)."""
        ev = self.engine.event(f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> List:
        """Synchronously take everything currently queued."""
        items = list(self._items)
        self._items.clear()
        return items
