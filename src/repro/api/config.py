"""One typed configuration tree for the whole reproduction.

Historically every entry point grew its own kwargs plumbing: ``build_node``
took device specs and sizes, :class:`~repro.storage.store.PolarStore` took
another overlapping set, :class:`~repro.db.database.PolarDB` threaded a
third through to both, and the cluster/benchmark code re-invented all of
it per call site.  :class:`ReproConfig` replaces that with a single
dataclass tree — ``store``, ``device``, ``engine``, ``db``, ``cluster``,
``perf``, ``consolidation`` sections — consumed by
:meth:`repro.api.PolarStore.open`, the CLI, and the figure benchmarks.

``from_dict``/``to_dict`` round-trip the tree through plain JSON-able
dicts (unknown keys are rejected, so a typo'd override fails loudly
instead of silently running defaults).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

from repro.common.units import MiB
from repro.storage.consolidation import ConsolidationConfig
from repro.storage.node import NodeConfig

#: Named device specs selectable from configuration (resolved lazily so
#: the config module stays import-light).
DEVICE_SPECS = (
    "P4510",
    "P5510",
    "POLARCSD1",
    "POLARCSD2",
    "OPTANE_P4800X",
    "OPTANE_P5800X",
)


def resolve_spec(name: str):
    """Look up a :class:`repro.csd.specs.DeviceSpec` by config name."""
    if name not in DEVICE_SPECS:
        raise ValueError(
            f"unknown device spec {name!r}; options: {', '.join(DEVICE_SPECS)}"
        )
    import repro.csd.specs as specs

    return getattr(specs, name)


@dataclass
class DeviceSection:
    """Which simulated devices back each storage node."""

    #: Data device (the compressed-capacity tier).
    data_spec: str = "POLARCSD2"
    #: Performance device (WAL + Opt#1 redo).
    perf_spec: str = "OPTANE_P5800X"
    #: Drives a storage server stripes across (device parallelism).
    parallelism: int = 8
    #: Arm the device-level fault injectors (bit flips, torn writes, ...).
    inject_faults: bool = False


@dataclass
class StoreSection:
    """One replicated PolarStore volume."""

    volume_bytes: int = 256 * MiB
    #: Physical NAND capacity; ``None`` keeps the spec's provisioning ratio.
    physical_bytes: Optional[int] = None
    replicas: int = 3
    seed: int = 0
    #: Per-node feature switches (§3's optimizations).
    node: NodeConfig = field(default_factory=NodeConfig)


@dataclass
class EngineSection:
    """Discrete-event kernel binding (PR 3's concurrency runtime)."""

    #: Bind the stack to a shared event kernel at open time; operations
    #: then dispatch through the engine-native ``*_proc`` paths.
    enabled: bool = False
    #: Group-commit window (0 = flush immediately; batching still
    #: emerges under load).
    group_commit_window_us: float = 0.0
    #: Device queue depth override (None keeps each device's default).
    qd: Optional[int] = None
    #: Bank GC work and drain it from an engine daemon.
    defer_gc: bool = False


@dataclass
class DbSection:
    """Compute layer sitting on the volume."""

    buffer_pool_pages: int = 256
    ro_nodes: int = 1


@dataclass
class ClusterSection:
    """Sharded serving layer (``repro.cluster.runtime``).

    ``shards >= 2`` makes :meth:`repro.api.PolarStore.open` build a
    :class:`~repro.cluster.runtime.ClusterRuntime` — N replica groups on
    one shared engine — instead of a single volume.
    """

    shards: int = 0
    #: Keys per range-sharded chunk (each key owns one 16 KiB page).
    chunk_keys: int = 8
    #: Placement/scheduling block threshold (§4.2.1).
    usage_limit: float = 0.75
    #: Half-width of the scheduler's [c_l, c_h] band relative to c_avg.
    band_width: float = 0.10
    #: Concurrent migration streams (background mover throttle).
    migration_streams: int = 2
    #: Catch-up rounds before the cutover pause forces a final drain.
    max_catchup_rounds: int = 3
    #: Physical capacity of each shard as a fraction of its logical
    #: capacity (drives the logical-vs-physical stranding of Fig 10/11).
    physical_fraction: float = 0.5
    #: Drive chunk placement and migration cutover through a replicated
    #: Raft metadata log (``repro.consensus``) instead of direct
    #: in-memory mutation.  Off by default: placement decisions then
    #: commit at quorum before any chunk is created or flipped.
    consensus: bool = False
    #: Replica count of the metadata Raft group when ``consensus`` is on.
    consensus_nodes: int = 3


@dataclass
class PerfConfig:
    """Wall-clock fast path (``repro.perf``): pool, memo, zero-copy.

    All off by default: the fast path is opt-in, and with ``enabled``
    False the hot paths run exactly the serial seed code.  Enabling it
    changes no simulated timing and no output byte (golden-tested) —
    only how fast the process gets there.
    """

    #: Master switch; False leaves the serial path untouched.
    enabled: bool = False
    #: Codec pool workers; 0 = memo-only, -1 = auto-size from CPU count.
    pool_workers: int = -1
    #: ``process`` (true parallelism), ``thread`` (no-fork fallback),
    #: or ``serial`` (inline compute, for A/B runs).
    pool_kind: str = "process"
    #: Codec memo capacity; 0 disables memoization.
    memo_capacity_bytes: int = 64 * MiB
    #: memoryview/bytearray plumbing through the page pipeline.
    zero_copy: bool = True
    #: Page-buffer arena free-list depth.
    arena_slots: int = 8


@dataclass
class ParallelSection:
    """Multi-core scale-out (``repro.engine.parallel``).

    ``workers > 1`` makes cluster entry points host each replica group's
    engine in a forked worker process behind the conservative
    epoch-barrier synchronizer — proven byte-identical to serial by the
    perf harness's third leg.  ``REPRO_WORKERS`` / ``--workers`` override
    this section at the CLI.
    """

    #: Worker processes for parallel execution (1 = serial, in-process).
    workers: int = 1
    #: Conservative lookahead: a certified lower bound (simulated µs) on
    #: the latency of any cross-shard storage write.  The coordinator
    #: only dispatches events strictly below ``min(issue + lookahead)``
    #: over outstanding remote calls; every completion is checked against
    #: the bound, so an overstated floor fails loudly instead of
    #: diverging.
    lookahead_us: float = 8.0


@dataclass
class NetSection:
    """Serving layer (``repro.net``): the socket server front-end.

    Consumed by ``python -m repro serve`` and
    :class:`repro.net.server.PolarStoreServer`; irrelevant (and
    harmless) for purely in-process deployments.
    """

    host: str = "127.0.0.1"
    port: int = 7411
    #: Server-side admission window: ops in flight *in simulated time*
    #: beyond this are rejected, not queued (open-loop load shedding).
    #: Evaluated at simulated arrival instants, so rejection decisions
    #: are deterministic for a seeded request stream.
    window: int = 64
    #: Largest frame the server will accept (0 keeps the protocol cap).
    max_frame_bytes: int = 0


@dataclass
class ReproConfig:
    """The full configuration tree."""

    store: StoreSection = field(default_factory=StoreSection)
    device: DeviceSection = field(default_factory=DeviceSection)
    engine: EngineSection = field(default_factory=EngineSection)
    db: DbSection = field(default_factory=DbSection)
    cluster: ClusterSection = field(default_factory=ClusterSection)
    perf: PerfConfig = field(default_factory=PerfConfig)
    net: NetSection = field(default_factory=NetSection)
    parallel: ParallelSection = field(default_factory=ParallelSection)
    #: Evicted-redo organization (single-level/leveled/tiered) plus the
    #: background consolidation/scrub cadence and compaction throttle.
    consolidation: ConsolidationConfig = field(
        default_factory=ConsolidationConfig
    )

    # -- validation --------------------------------------------------------

    def validate(self) -> "ReproConfig":
        if self.store.replicas < 1:
            raise ValueError("store.replicas must be at least 1")
        if self.store.volume_bytes <= 0:
            raise ValueError("store.volume_bytes must be positive")
        if self.cluster.shards < 0:
            raise ValueError("cluster.shards cannot be negative")
        if self.cluster.shards == 1:
            raise ValueError(
                "cluster.shards == 1 is ambiguous: use 0 for a single "
                "volume or >= 2 for a sharded runtime"
            )
        if self.cluster.chunk_keys < 1:
            raise ValueError("cluster.chunk_keys must be at least 1")
        if not 0.0 < self.cluster.usage_limit <= 1.0:
            raise ValueError("cluster.usage_limit must be in (0, 1]")
        if self.cluster.consensus_nodes < 1:
            raise ValueError("cluster.consensus_nodes must be at least 1")
        if self.cluster.consensus and self.cluster.consensus_nodes % 2 == 0:
            raise ValueError(
                "cluster.consensus_nodes must be odd (majority quorum)"
            )
        if self.engine.group_commit_window_us < 0:
            raise ValueError("engine.group_commit_window_us cannot be negative")
        if self.net.window < 1:
            raise ValueError("net.window must be at least 1")
        if not 0 < self.net.port < 65536:
            raise ValueError("net.port must be in [1, 65535]")
        if self.net.max_frame_bytes < 0:
            raise ValueError("net.max_frame_bytes cannot be negative")
        if self.parallel.workers < 1:
            raise ValueError("parallel.workers must be at least 1")
        if self.parallel.lookahead_us <= 0:
            raise ValueError("parallel.lookahead_us must be positive")
        if self.perf.pool_kind not in ("process", "thread", "serial"):
            raise ValueError(
                "perf.pool_kind must be 'process', 'thread', or 'serial'"
            )
        if self.perf.pool_workers < -1:
            raise ValueError("perf.pool_workers must be >= -1 (-1 = auto)")
        if self.perf.memo_capacity_bytes < 0:
            raise ValueError("perf.memo_capacity_bytes cannot be negative")
        if self.perf.arena_slots < 1:
            raise ValueError("perf.arena_slots must be at least 1")
        resolve_spec(self.device.data_spec)
        resolve_spec(self.device.perf_spec)
        self.consolidation.validate()
        return self

    # -- dict round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict (the exact shape ``from_dict`` accepts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: Optional[Dict[str, Any]]) -> "ReproConfig":
        """Build a config from a (possibly partial) nested dict.

        Unknown section or field names raise ``ValueError`` — silent
        acceptance of a typo'd key is how experiments run with the wrong
        parameters without anyone noticing.
        """
        doc = dict(doc or {})
        sections = {f.name: f for f in fields(cls)}
        unknown = set(doc) - set(sections)
        if unknown:
            raise ValueError(
                f"unknown config sections: {sorted(unknown)}; "
                f"expected {sorted(sections)}"
            )
        kwargs = {}
        for name, section_field in sections.items():
            section_cls = section_field.default_factory  # type: ignore[misc]
            sub = doc.get(name, {})
            if dataclasses.is_dataclass(sub):
                kwargs[name] = sub
                continue
            kwargs[name] = _section_from_dict(section_cls, name, sub)
        return cls(**kwargs).validate()


def _section_from_dict(section_cls, section_name: str, doc: Dict[str, Any]):
    if not isinstance(doc, dict):
        raise ValueError(
            f"config section {section_name!r} must be a dict, "
            f"got {type(doc).__name__}"
        )
    allowed = {f.name for f in fields(section_cls)}
    unknown = set(doc) - allowed
    if unknown:
        raise ValueError(
            f"unknown keys in config section {section_name!r}: "
            f"{sorted(unknown)}; expected {sorted(allowed)}"
        )
    kwargs = dict(doc)
    # The one nested dataclass below section level: store.node.
    if section_cls is StoreSection and isinstance(kwargs.get("node"), dict):
        node_doc = kwargs["node"]
        node_allowed = {f.name for f in fields(NodeConfig)}
        node_unknown = set(node_doc) - node_allowed
        if node_unknown:
            raise ValueError(
                f"unknown keys in config section 'store.node': "
                f"{sorted(node_unknown)}; expected {sorted(node_allowed)}"
            )
        kwargs["node"] = NodeConfig(**node_doc)
    return section_cls(**kwargs)
