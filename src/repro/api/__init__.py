"""repro.api — the unified client facade over the reproduction stack.

``PolarStore.open(config)`` is the single front door; everything else
here is the typed configuration tree it consumes and the config-driven
constructors it delegates to.  Legacy constructor-plumbing entry points
live on in :mod:`repro.api.legacy` as deprecation shims.
"""

from repro.api.client import PolarStore, PolarStoreClient
from repro.api.config import (
    ClusterSection,
    ConsolidationConfig,
    DbSection,
    DeviceSection,
    EngineSection,
    PerfConfig,
    ReproConfig,
    StoreSection,
    resolve_spec,
)
from repro.api.factory import build_cluster, build_db, build_store

__all__ = [
    "PolarStore",
    "PolarStoreClient",
    "ReproConfig",
    "StoreSection",
    "DeviceSection",
    "EngineSection",
    "DbSection",
    "ClusterSection",
    "ConsolidationConfig",
    "PerfConfig",
    "resolve_spec",
    "build_store",
    "build_db",
    "build_cluster",
]
