"""repro.api — the unified client facade over the reproduction stack.

``PolarStore.open(config)`` is the in-process front door and
``PolarStore.connect(addr)`` the network one; both return the same
:class:`PolarStoreClient` riding on a :class:`Transport` (local
execution or the ``repro.net`` wire protocol).  Everything else here is
the typed configuration tree they consume and the config-driven
constructors they delegate to.  Legacy constructor-plumbing entry
points live on in :mod:`repro.api.legacy` as deprecation shims.
"""

from repro.api.client import PolarStore, PolarStoreClient
from repro.api.config import (
    ClusterSection,
    ConsolidationConfig,
    DbSection,
    DeviceSection,
    EngineSection,
    NetSection,
    PerfConfig,
    ReproConfig,
    StoreSection,
    resolve_spec,
)
from repro.api.factory import build_cluster, build_db, build_store
from repro.api.transport import (
    TRANSPORT_OPS,
    AdmissionError,
    LocalTransport,
    Transport,
    TransportCapabilityError,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "PolarStore",
    "PolarStoreClient",
    "ReproConfig",
    "StoreSection",
    "DeviceSection",
    "EngineSection",
    "DbSection",
    "ClusterSection",
    "ConsolidationConfig",
    "NetSection",
    "PerfConfig",
    "resolve_spec",
    "build_store",
    "build_db",
    "build_cluster",
    "Transport",
    "LocalTransport",
    "TransportError",
    "TransportCapabilityError",
    "AdmissionError",
    "TransportTimeout",
    "TRANSPORT_OPS",
]
