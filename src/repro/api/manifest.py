"""Public-API stability manifest.

Snapshots the exported symbols and call signatures of the two surfaces
this redesign promises to keep stable — :mod:`repro.api` and
:mod:`repro.cluster.runtime` — into the checked-in
``src/repro/api/api_manifest.json``.  CI runs ``python -m
repro.api.manifest --check`` (and ``tests/api/test_manifest.py``): any
drift between the code and the manifest fails the build, so breaking an
exported signature requires an explicit, reviewable manifest update via
``python -m repro.api.manifest --update``.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import os
import sys
from typing import Any, Dict

#: The stability surface: every ``__all__`` symbol of these modules.
TRACKED_MODULES = ("repro.api", "repro.cluster.runtime")

MANIFEST_PATH = os.path.join(os.path.dirname(__file__), "api_manifest.json")


def _describe_callable(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _describe_class(cls) -> Dict[str, Any]:
    members: Dict[str, str] = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            members[name] = "property"
        elif isinstance(member, classmethod):
            members[name] = "classmethod" + _describe_callable(
                member.__func__
            )
        elif isinstance(member, staticmethod):
            members[name] = "staticmethod" + _describe_callable(
                member.__func__
            )
        elif callable(member):
            members[name] = _describe_callable(member)
        else:
            members[name] = "attribute"
    return {
        "kind": "class",
        "signature": _describe_callable(cls),
        "members": members,
    }


def _describe(obj) -> Dict[str, Any]:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {"kind": "function", "signature": _describe_callable(obj)}
    return {"kind": "constant", "type": type(obj).__name__}


def build_manifest() -> Dict[str, Any]:
    manifest: Dict[str, Any] = {}
    for module_name in TRACKED_MODULES:
        module = importlib.import_module(module_name)
        exported = sorted(module.__all__)
        manifest[module_name] = {
            "exports": exported,
            "symbols": {
                name: _describe(getattr(module, name)) for name in exported
            },
        }
    return manifest


def load_manifest() -> Dict[str, Any]:
    with open(MANIFEST_PATH) as handle:
        return json.load(handle)


def diff_manifest() -> str:
    """Empty string if the code matches the checked-in manifest."""
    try:
        recorded = load_manifest()
    except FileNotFoundError:
        return f"manifest missing: {MANIFEST_PATH}"
    current = build_manifest()
    if recorded == current:
        return ""
    lines = ["public API drift detected:"]
    for module_name in sorted(set(recorded) | set(current)):
        old = recorded.get(module_name, {})
        new = current.get(module_name, {})
        old_syms = old.get("symbols", {})
        new_syms = new.get("symbols", {})
        for name in sorted(set(old_syms) | set(new_syms)):
            if name not in new_syms:
                lines.append(f"  {module_name}.{name}: removed")
            elif name not in old_syms:
                lines.append(f"  {module_name}.{name}: added")
            elif old_syms[name] != new_syms[name]:
                lines.append(
                    f"  {module_name}.{name}: changed\n"
                    f"    recorded: {json.dumps(old_syms[name], sort_keys=True)}\n"
                    f"    current:  {json.dumps(new_syms[name], sort_keys=True)}"
                )
    lines.append(
        "if the change is intentional, regenerate with: "
        "python -m repro.api.manifest --update"
    )
    return "\n".join(lines)


def write_manifest() -> str:
    with open(MANIFEST_PATH, "w") as handle:
        json.dump(build_manifest(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return MANIFEST_PATH


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.manifest",
        description="check or update the public-API stability manifest",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if the code drifted from the manifest",
    )
    mode.add_argument(
        "--update", action="store_true",
        help="regenerate the manifest from the current code",
    )
    args = parser.parse_args(argv)
    if args.update:
        print(f"wrote {write_manifest()}")
        return 0
    drift = diff_manifest()
    if drift:
        print(drift, file=sys.stderr)
        return 1
    print("public API matches the manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
