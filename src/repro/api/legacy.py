"""Deprecated pre-facade entry points, kept as thin shims.

Before :meth:`repro.api.PolarStore.open`, callers wired the stack by hand
from three scattered constructors.  They still work — unchanged modules
keep importing them from their original homes — but new code should go
through the facade; importing them *from here* states the intent and
emits a :class:`DeprecationWarning` so stragglers surface in test runs.

==========================  =============================================
legacy entry point          facade replacement
==========================  =============================================
``build_node(...)``         ``PolarStore.open(...)`` -> ``client.store
                            .leader`` (or ``build_store(config).leader``)
``PolarVolume(...)``        ``PolarStore.open(config).store``
``PolarDB(...)``            ``PolarStore.open(config).db``
==========================  =============================================
"""

from __future__ import annotations

import warnings


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is a legacy entry point; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_node(*args, **kwargs):
    """Shim for :func:`repro.storage.store.build_node`."""
    _deprecated("repro.api.legacy.build_node", "repro.api.PolarStore.open")
    from repro.storage.store import build_node as _impl

    return _impl(*args, **kwargs)


def PolarVolume(*args, **kwargs):
    """Shim for the raw :class:`repro.storage.store.PolarStore` volume."""
    _deprecated(
        "repro.api.legacy.PolarVolume",
        "repro.api.PolarStore.open(config).store",
    )
    from repro.storage.store import PolarStore as _impl

    return _impl(*args, **kwargs)


def PolarDB(*args, **kwargs):
    """Shim for :class:`repro.db.database.PolarDB`."""
    _deprecated(
        "repro.api.legacy.PolarDB", "repro.api.PolarStore.open(config).db"
    )
    from repro.db.database import PolarDB as _impl

    return _impl(*args, **kwargs)
