"""The transport boundary: one client surface, local or remote.

:class:`~repro.api.client.PolarStoreClient` used to *be* the dispatch
logic — it owned the backend objects and the sync-vs-proc routing.
This module extracts that into a :class:`Transport`, so the same typed
client rides on either side of a socket:

* :class:`LocalTransport` — in-process access, built from a
  :class:`~repro.api.config.ReproConfig` exactly as ``PolarStore.open``
  always did.  It owns the volume/cluster, the optional event kernel,
  and the simulated-time cursor, and executes ops directly.
* :class:`repro.net.client.SocketTransport` — remote access over the
  ``repro.net`` wire protocol, returned by ``PolarStore.connect``.
  Same ops, same result shapes, same simulated timings (golden-tested
  to equality); the server executes against its own LocalTransport.

Everything a transport cannot offer (direct backend handles, engine
binding, ``*_proc`` generators) raises
:class:`TransportCapabilityError` instead of pretending — remote
callers get a actionable message, not an ``AttributeError``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api.config import ReproConfig
from repro.api.factory import build_cluster, build_db
from repro.common.errors import ReproError

#: Ops a transport must implement (the PolarStoreClient data plane).
TRANSPORT_OPS = (
    "create_table",
    "insert",
    "update",
    "delete",
    "select",
    "range_select",
    "bulk_load",
    "checkpoint",
    "write_page",
    "read_page",
    "archive_range",
    "scrub",
    "compression_ratio",
    "space",
)


class TransportError(ReproError):
    """A transport-level failure (connection, timeout, remote error)."""


class TransportCapabilityError(TransportError):
    """The operation needs a capability this transport does not have."""


class AdmissionError(TransportError):
    """Rejected by admission control (server window or client queue)."""


class TransportTimeout(TransportError):
    """A request exceeded its wall-clock deadline."""


class Transport:
    """What a :class:`PolarStoreClient` needs from its backing deployment.

    A transport executes typed ops at the client's simulated-time
    cursor and owns that cursor.  ``call`` is the synchronous path
    (used by every client method); transports that can pipeline
    (sockets) additionally implement ``submit``.
    """

    #: ``"local"`` or ``"socket"`` — for introspection and error text.
    kind: str = "abstract"

    # -- simulated time ----------------------------------------------------

    @property
    def now_us(self) -> float:
        raise NotImplementedError

    def advance_to(self, now_us: float) -> float:
        raise NotImplementedError

    # -- ops ---------------------------------------------------------------

    def call(self, op: str, /, *args, **kwargs):
        """Execute one op at the cursor and return its result object."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- introspection -----------------------------------------------------

    @property
    def sharded(self) -> bool:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Transport kind plus deployment shape (for logs and errors)."""
        return {"kind": self.kind, "sharded": self.sharded}

    # -- capability gating -------------------------------------------------

    def _no_capability(self, what: str) -> TransportCapabilityError:
        return TransportCapabilityError(
            f"{what} needs in-process access; this client is connected "
            f"over a {self.kind!r} transport"
        )

    @property
    def config(self) -> Optional[ReproConfig]:
        raise self._no_capability("the deployment config")

    @property
    def db(self):
        raise self._no_capability("the PolarDB handle")

    @property
    def runtime(self):
        raise self._no_capability("the ClusterRuntime handle")

    @property
    def store(self):
        raise self._no_capability("the raw volume")

    @property
    def engine(self):
        raise self._no_capability("the event kernel")

    @property
    def metrics(self):
        raise self._no_capability("the metrics registry")


class LocalTransport(Transport):
    """In-process execution: the dispatch previously inlined in the
    client, behind the transport boundary.

    Keeps the historical seams hidden exactly as before: the simulated
    time cursor, sync-vs-``_proc`` routing when an engine is bound, and
    single-volume vs sharded-cluster backends behind the same ops.
    """

    kind = "local"

    def __init__(self, config: ReproConfig) -> None:
        self._config = config.validate()
        self._now_us = 0.0
        self._sharded = config.cluster.shards >= 2
        if self._sharded:
            self._runtime = build_cluster(config)
            self._db = None
            self._engine = self._runtime.engine
        else:
            self._runtime = None
            self._db = build_db(config)
            self._engine = None
            if config.engine.enabled:
                from repro.engine import Engine

                self._engine = Engine()
                self._db.bind_engine(
                    self._engine,
                    group_commit_window_us=(
                        config.engine.group_commit_window_us
                    ),
                    qd=config.engine.qd,
                    defer_gc=config.engine.defer_gc,
                )

    # -- locals the client (and the net server) may reach ------------------

    @property
    def config(self) -> ReproConfig:
        return self._config

    @property
    def db(self):
        return self._db

    @property
    def runtime(self):
        return self._runtime

    @property
    def engine(self):
        return self._engine

    @property
    def sharded(self) -> bool:
        return self._sharded

    @property
    def metrics(self):
        if self._sharded:
            return self._runtime.metrics
        return self._db.metrics

    @property
    def store(self):
        if self._sharded:
            raise ReproError(
                "a sharded client has no single volume; use .runtime"
            )
        return self._db.store

    def describe(self) -> Dict[str, object]:
        doc = super().describe()
        doc["engine"] = self._engine is not None
        doc["shards"] = self._config.cluster.shards
        return doc

    # -- simulated time ----------------------------------------------------

    @property
    def now_us(self) -> float:
        if self._engine is not None:
            return max(self._now_us, self._engine.now_us)
        return self._now_us

    def advance_to(self, now_us: float) -> float:
        self._now_us = max(self._now_us, now_us)
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
        return self.now_us

    # -- engine adoption (workload-driver compatibility) -------------------

    def adopt_engine(self, engine, **kwargs) -> None:
        if self._sharded:
            if engine is not self._runtime.engine:
                raise ReproError(
                    "a sharded client is bound to its runtime's engine; "
                    "pass engine=client.engine to the workload driver"
                )
            return
        self._engine = engine
        self._db.bind_engine(engine, **kwargs)

    # -- dispatch ----------------------------------------------------------

    def backend(self):
        return self._runtime if self._sharded else self._db

    def call(self, op: str, /, *args, **kwargs):
        handler = getattr(self, "_op_" + op, None)
        if handler is None:
            raise ReproError(f"unknown transport op {op!r}")
        return handler(*args, **kwargs)

    def _dispatch(self, op: str, *args, **kwargs):
        """Route one DML op sync-vs-proc based on engine binding."""
        backend = self.backend()
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
            result = self._engine.run(
                getattr(backend, op + "_proc")(*args, **kwargs)
            )
            self._now_us = max(self._now_us, self._engine.now_us)
        else:
            result = getattr(backend, op)(self._now_us, *args, **kwargs)
            done = getattr(result, "done_us", result)
            self._now_us = max(self._now_us, float(done))
        return result

    def proc(self, op: str, *args, **kwargs):
        """The engine-native generator for one op (workload drivers)."""
        return getattr(self.backend(), op + "_proc")(*args, **kwargs)

    # -- op handlers -------------------------------------------------------

    def _op_create_table(self, table: str) -> None:
        self.backend().create_table(table)

    def _op_insert(self, table: str, key: int, value: bytes):
        return self._dispatch("insert", table, key, bytes(value))

    def _op_update(self, table: str, key: int, value: bytes):
        return self._dispatch("update", table, key, bytes(value))

    def _op_delete(self, table: str, key: int):
        return self._dispatch("delete", table, key)

    def _op_select(self, table: str, key: int, ro_index: int = -1):
        if self._sharded:
            return self._dispatch("select", table, key)
        return self._dispatch("select", table, key, ro_index=ro_index)

    def _op_range_select(self, table: str, low: int, high: int):
        return self._dispatch("range_select", table, low, high)

    def _op_bulk_load(self, table: str, rows) -> float:
        backend = self.backend()
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
        done = backend.bulk_load(
            self.now_us, table, [(k, bytes(v)) for k, v in rows]
        )
        self._now_us = max(self._now_us, done)
        return done

    def _op_checkpoint(self) -> float:
        done = self.backend().checkpoint(self.now_us)
        self._now_us = max(self._now_us, done)
        return done

    def _op_write_page(self, page_no: int, data: bytes, **kwargs):
        committed = self.store.write_page(
            self.now_us, page_no, bytes(data), **kwargs
        )
        self._now_us = max(self._now_us, committed.commit_us)
        return committed

    def _op_read_page(self, page_no: int):
        result = self.store.read_page(self.now_us, page_no)
        self._now_us = max(self._now_us, result.done_us)
        return result

    def _op_archive_range(self, page_nos) -> float:
        done = self.store.archive_range(self.now_us, list(page_nos))
        self._now_us = max(self._now_us, done)
        return done

    def _op_scrub(self) -> float:
        done = self.store.scrub(self.now_us)
        self._now_us = max(self._now_us, done)
        return done

    def _op_compression_ratio(self) -> float:
        if self._sharded:
            return self._runtime.compression_ratio()
        return self._db.compression_ratio()

    def _op_space(self):
        if self._sharded:
            return (
                sum(s.logical_used for s in self._runtime.shards),
                sum(s.physical_used for s in self._runtime.shards),
            )
        return (self._db.logical_bytes, self._db.physical_bytes)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release backend references (idempotent)."""
        self._db = None
        self._runtime = None
        self._engine = None


__all__ = [
    "AdmissionError",
    "LocalTransport",
    "TRANSPORT_OPS",
    "Transport",
    "TransportCapabilityError",
    "TransportError",
    "TransportTimeout",
]
