"""Config-driven constructors: the one place the stack gets wired.

Everything :meth:`repro.api.PolarStore.open` returns is built here from a
:class:`~repro.api.config.ReproConfig`; the legacy constructor plumbing
(``build_node``/``PolarStore(...)``/``PolarDB(...)`` with hand-threaded
kwargs) remains available as thin shims for existing call sites.
"""

from __future__ import annotations

import dataclasses

from repro.api.config import ReproConfig, resolve_spec


def apply_perf(config: ReproConfig) -> None:
    """Install (or clear) the process-wide wall-clock fast path.

    Called by every ``build_*`` before construction so a volume built
    from a perf-enabled config binds the runtime's counters into its
    metrics registry.  An already-active runtime is kept as-is when the
    config section is disabled — explicit harness/CLI configuration
    (e.g. ``REPRO_PERF``) outlives per-volume defaults.
    """
    from repro.perf.runtime import PerfRuntime, configure

    # perf.enabled=False leaves any externally configured runtime alone:
    # the section's default must not tear down REPRO_PERF-driven setups.
    if config.perf.enabled:
        configure(PerfRuntime.from_config(config.perf))


def build_store(config: ReproConfig, seed_offset: int = 0):
    """One replicated :class:`~repro.storage.store.PolarStore` volume."""
    from repro.storage.store import PolarStore

    apply_perf(config)
    store_cfg = config.store
    device_cfg = config.device
    return PolarStore(
        # Each volume owns its NodeConfig instance so per-volume mutation
        # (tests flipping switches) cannot leak across shards.
        config=dataclasses.replace(store_cfg.node),
        data_spec=resolve_spec(device_cfg.data_spec),
        perf_spec=resolve_spec(device_cfg.perf_spec),
        volume_bytes=store_cfg.volume_bytes,
        physical_bytes=store_cfg.physical_bytes,
        replicas=store_cfg.replicas,
        seed=store_cfg.seed + seed_offset,
        inject_faults=device_cfg.inject_faults,
        parallelism=device_cfg.parallelism,
        # Same per-volume-instance rule as the NodeConfig above.
        consolidation=dataclasses.replace(config.consolidation),
    )


def build_db(config: ReproConfig, seed_offset: int = 0):
    """A :class:`~repro.db.database.PolarDB` instance on a fresh volume."""
    from repro.db.database import PolarDB

    return PolarDB(
        store=build_store(config, seed_offset=seed_offset),
        buffer_pool_pages=config.db.buffer_pool_pages,
        ro_nodes=config.db.ro_nodes,
    )


def build_cluster(config: ReproConfig, engine=None):
    """A sharded :class:`~repro.cluster.runtime.ClusterRuntime`."""
    from repro.cluster.runtime import ClusterRuntime

    apply_perf(config)
    return ClusterRuntime(config, engine=engine)
