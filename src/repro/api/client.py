"""The unified PolarStore client facade.

:meth:`PolarStore.open` is the single front door to the reproduction:
it takes one :class:`~repro.api.config.ReproConfig` (or the equivalent
nested dict) and returns a typed :class:`PolarStoreClient` whose
``insert``/``select``/... methods hide three historical seams:

* **time threading** — the legacy entry points take ``now_us`` and
  return completion times the caller must loop back in; the client keeps
  the simulated-time cursor itself (read it via :attr:`PolarStoreClient
  .now_us`);
* **sync vs ``_proc`` dispatch** — with ``engine.enabled`` the client
  routes every operation through the engine-native generator path
  (statement CPU queues on core pools, redo coalesces in group commit);
  without it the analytic synchronous path runs.  Same method, same
  result type, identical single-client timings (tested to equality);
* **single volume vs sharded cluster** — with ``cluster.shards >= 2``
  the same methods route by key range across a
  :class:`~repro.cluster.runtime.ClusterRuntime` of real replica groups,
  and :meth:`PolarStoreClient.rebalance` drives live migration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.config import ReproConfig
from repro.api.factory import build_cluster, build_db
from repro.common.errors import ReproError


class PolarStoreClient:
    """A typed handle over one opened PolarStore deployment."""

    def __init__(self, config: ReproConfig) -> None:
        self.config = config.validate()
        self._now_us = 0.0
        self._sharded = config.cluster.shards >= 2
        if self._sharded:
            self.runtime = build_cluster(config)
            self.db = None
            self._engine = self.runtime.engine
        else:
            self.runtime = None
            self.db = build_db(config)
            self._engine = None
            if config.engine.enabled:
                from repro.engine import Engine

                self._engine = Engine()
                self.db.bind_engine(
                    self._engine,
                    group_commit_window_us=(
                        config.engine.group_commit_window_us
                    ),
                    qd=config.engine.qd,
                    defer_gc=config.engine.defer_gc,
                )

    # -- introspection -----------------------------------------------------

    @property
    def now_us(self) -> float:
        """The client's simulated-time cursor."""
        if self._engine is not None:
            return max(self._now_us, self._engine.now_us)
        return self._now_us

    @property
    def engine(self):
        """The bound event kernel (None in plain synchronous mode)."""
        return self._engine

    @property
    def sharded(self) -> bool:
        return self._sharded

    @property
    def metrics(self):
        """Cluster-level registry when sharded, volume-wide otherwise."""
        if self._sharded:
            return self.runtime.metrics
        return self.db.metrics

    @property
    def store(self):
        """The single underlying volume (single-volume mode only)."""
        if self._sharded:
            raise ReproError(
                "a sharded client has no single volume; use .runtime"
            )
        return self.db.store

    def advance_to(self, now_us: float) -> float:
        """Move the simulated-time cursor forward (never backward)."""
        self._now_us = max(self._now_us, now_us)
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
        return self.now_us

    # -- dispatch ----------------------------------------------------------

    def _backend(self):
        return self.runtime if self._sharded else self.db

    def _call(self, op: str, *args, **kwargs):
        """Route one operation sync-vs-proc based on engine binding."""
        backend = self._backend()
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
            result = self._engine.run(
                getattr(backend, op + "_proc")(*args, **kwargs)
            )
            self._now_us = max(self._now_us, self._engine.now_us)
        else:
            result = getattr(backend, op)(self._now_us, *args, **kwargs)
            done = getattr(result, "done_us", result)
            self._now_us = max(self._now_us, float(done))
        return result

    # -- DDL / DML ---------------------------------------------------------

    def create_table(self, name: str) -> None:
        self._backend().create_table(name)

    def insert(self, table: str, key: int, value: bytes):
        return self._call("insert", table, key, value)

    def update(self, table: str, key: int, value: bytes):
        return self._call("update", table, key, value)

    def delete(self, table: str, key: int):
        return self._call("delete", table, key)

    def select(self, table: str, key: int, ro_index: int = -1):
        if self._sharded:
            return self._call("select", table, key)
        return self._call("select", table, key, ro_index=ro_index)

    def range_select(self, table: str, low: int, high: int):
        return self._call("range_select", table, low, high)

    def bulk_load(
        self, table: str, rows: Iterable[Tuple[int, bytes]]
    ) -> float:
        backend = self._backend()
        if self._engine is not None:
            self._engine.advance_to(self._now_us)
        done = backend.bulk_load(self.now_us, table, list(rows))
        self._now_us = max(self._now_us, done)
        return done

    def checkpoint(self) -> float:
        done = self._backend().checkpoint(self.now_us)
        self._now_us = max(self._now_us, done)
        return done

    # -- volume-level page I/O (single-volume mode) ------------------------

    def write_page(self, page_no: int, data: bytes, **kwargs):
        committed = self.store.write_page(
            self.now_us, page_no, data, **kwargs
        )
        self._now_us = max(self._now_us, committed.commit_us)
        return committed

    def read_page(self, page_no: int):
        result = self.store.read_page(self.now_us, page_no)
        self._now_us = max(self._now_us, result.done_us)
        return result

    def archive_range(self, page_nos: List[int]) -> float:
        done = self.store.archive_range(self.now_us, list(page_nos))
        self._now_us = max(self._now_us, done)
        return done

    def scrub(self) -> float:
        done = self.store.scrub(self.now_us)
        self._now_us = max(self._now_us, done)
        return done

    # -- cluster operations (sharded mode) ---------------------------------

    def _require_sharded(self):
        if not self._sharded:
            raise ReproError(
                "cluster operations need cluster.shards >= 2 in the config"
            )
        return self.runtime

    def rebalance(self, scheduler=None):
        """Run the zone scheduler and execute its plan as live migration
        daemons; returns the :class:`MigrationReport`."""
        return self._require_sharded().rebalance(scheduler)

    def zone_occupancy(self, scheduler=None) -> Dict[str, int]:
        return self._require_sharded().zone_occupancy(scheduler)

    def wasted_fractions(self) -> Tuple[float, float]:
        return self._require_sharded().wasted_fractions()

    # -- workload-driver compatibility -------------------------------------

    def bind_engine(self, engine, **kwargs) -> None:
        """Adopt an external event kernel (what ``run_sysbench`` does).

        A sharded client is born on its runtime's kernel and cannot move;
        passing that same kernel is a no-op."""
        if self._sharded:
            if engine is not self.runtime.engine:
                raise ReproError(
                    "a sharded client is bound to its runtime's engine; "
                    "pass engine=client.engine to the workload driver"
                )
            return
        self._engine = engine
        self.db.bind_engine(engine, **kwargs)

    def insert_proc(self, table: str, key: int, value: bytes):
        return self._backend().insert_proc(table, key, value)

    def update_proc(self, table: str, key: int, value: bytes):
        return self._backend().update_proc(table, key, value)

    def delete_proc(self, table: str, key: int):
        return self._backend().delete_proc(table, key)

    def select_proc(self, table: str, key: int, ro_index: int = -1):
        if self._sharded:
            return self.runtime.select_proc(table, key)
        return self.db.select_proc(table, key, ro_index=ro_index)

    def range_select_proc(self, table: str, low: int, high: int):
        return self._backend().range_select_proc(table, low, high)

    # -- space -------------------------------------------------------------

    def compression_ratio(self) -> float:
        if self._sharded:
            return self.runtime.compression_ratio()
        return self.db.compression_ratio()

    @property
    def logical_bytes(self) -> int:
        if self._sharded:
            return sum(s.logical_used for s in self.runtime.shards)
        return self.db.logical_bytes

    @property
    def physical_bytes(self) -> int:
        if self._sharded:
            return sum(s.physical_used for s in self.runtime.shards)
        return self.db.physical_bytes

    def close(self) -> None:
        """Release backend references (idempotent)."""
        self.db = None
        self.runtime = None
        self._engine = None


class PolarStore:
    """The unified entry point: ``PolarStore.open(config)``.

    (Distinct from :class:`repro.storage.store.PolarStore`, the
    storage-layer volume this facade fronts — see MIGRATION.md.)
    """

    def __init__(self, *_args, **_kwargs) -> None:
        raise TypeError(
            "repro.api.PolarStore is not instantiated directly; call "
            "PolarStore.open(config) for a client handle, or use "
            "repro.storage.store.PolarStore for a raw volume"
        )

    @classmethod
    def open(
        cls,
        config: Optional[Union[ReproConfig, dict]] = None,
        **sections,
    ) -> PolarStoreClient:
        """Open a deployment described by ``config``.

        ``config`` may be a :class:`ReproConfig`, a nested dict in the
        same shape, or omitted entirely with sections given as keyword
        arguments: ``PolarStore.open(cluster={"shards": 4})``.
        """
        if config is None:
            config = ReproConfig.from_dict(sections)
        elif isinstance(config, dict):
            if sections:
                raise ValueError(
                    "pass either a config dict or section kwargs, not both"
                )
            config = ReproConfig.from_dict(config)
        elif isinstance(config, ReproConfig):
            if sections:
                raise ValueError(
                    "section kwargs cannot amend a ReproConfig instance; "
                    "use dataclasses.replace on the sections instead"
                )
        else:
            raise TypeError(
                f"config must be ReproConfig, dict, or None, "
                f"got {type(config).__name__}"
            )
        return PolarStoreClient(config)
