"""The unified PolarStore client facade.

:meth:`PolarStore.open` is the in-process front door: it takes one
:class:`~repro.api.config.ReproConfig` (or the equivalent nested dict)
and returns a typed :class:`PolarStoreClient`.  :meth:`PolarStore
.connect` is the *network* front door: it dials a ``repro.net`` server
and returns the same client type.  Both ride the transport boundary
(:mod:`repro.api.transport`): the client's ``insert``/``select``/...
methods are thin typed wrappers over ``transport.call``, so the three
historical seams stay hidden regardless of where the engine runs:

* **time threading** — the legacy entry points take ``now_us`` and
  return completion times the caller must loop back in; the transport
  keeps the simulated-time cursor itself (read it via
  :attr:`PolarStoreClient.now_us`);
* **sync vs ``_proc`` dispatch** — with ``engine.enabled`` every
  operation routes through the engine-native generator path (statement
  CPU queues on core pools, redo coalesces in group commit); without it
  the analytic synchronous path runs.  Same method, same result type,
  identical single-client timings (tested to equality);
* **single volume vs sharded cluster** — with ``cluster.shards >= 2``
  the same methods route by key range across a
  :class:`~repro.cluster.runtime.ClusterRuntime` of real replica groups,
  and :meth:`PolarStoreClient.rebalance` drives live migration;
* **local vs remote** — ``open`` binds a
  :class:`~repro.api.transport.LocalTransport`; ``connect`` binds a
  :class:`~repro.net.client.SocketTransport` over the wire protocol.
  Results carry identical payload bytes and simulated timings (golden-
  tested); operations that need in-process access raise
  :class:`~repro.api.transport.TransportCapabilityError` on a remote
  client.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.config import ReproConfig
from repro.api.transport import LocalTransport, Transport
from repro.common.errors import ReproError


class PolarStoreClient:
    """A typed handle over one opened (or connected) PolarStore
    deployment; all dispatch flows through its :class:`Transport`."""

    def __init__(
        self,
        config: Optional[ReproConfig] = None,
        *,
        transport: Optional[Transport] = None,
    ) -> None:
        if (config is None) == (transport is None):
            raise ReproError(
                "PolarStoreClient needs exactly one of a ReproConfig "
                "(in-process) or a Transport instance"
            )
        if transport is None:
            transport = LocalTransport(config)
        self._transport = transport

    # -- introspection -----------------------------------------------------

    @property
    def transport(self) -> Transport:
        """The bound transport (``.kind`` is ``"local"`` or ``"socket"``)."""
        return self._transport

    @property
    def config(self):
        """The deployment config (local transports only)."""
        return self._transport.config

    @property
    def now_us(self) -> float:
        """The client's simulated-time cursor."""
        return self._transport.now_us

    @property
    def engine(self):
        """The bound event kernel (None in plain synchronous mode;
        in-process access required)."""
        return self._transport.engine

    @property
    def sharded(self) -> bool:
        return self._transport.sharded

    @property
    def db(self):
        """The PolarDB handle (in-process access required)."""
        return self._transport.db

    @property
    def runtime(self):
        """The ClusterRuntime (in-process, sharded mode only)."""
        return self._transport.runtime

    @property
    def metrics(self):
        """Cluster-level registry when sharded, volume-wide otherwise
        (in-process access required)."""
        return self._transport.metrics

    @property
    def store(self):
        """The single underlying volume (in-process, single-volume
        mode only)."""
        return self._transport.store

    def advance_to(self, now_us: float) -> float:
        """Move the simulated-time cursor forward (never backward)."""
        return self._transport.advance_to(now_us)

    # -- DDL / DML ---------------------------------------------------------

    def create_table(self, name: str) -> None:
        self._transport.call("create_table", name)

    def insert(self, table: str, key: int, value: bytes):
        return self._transport.call("insert", table, key, value)

    def update(self, table: str, key: int, value: bytes):
        return self._transport.call("update", table, key, value)

    def delete(self, table: str, key: int):
        return self._transport.call("delete", table, key)

    def select(self, table: str, key: int, ro_index: int = -1):
        return self._transport.call("select", table, key, ro_index=ro_index)

    def range_select(self, table: str, low: int, high: int):
        return self._transport.call("range_select", table, low, high)

    def bulk_load(
        self, table: str, rows: Iterable[Tuple[int, bytes]]
    ) -> float:
        return self._transport.call("bulk_load", table, list(rows))

    def checkpoint(self) -> float:
        return self._transport.call("checkpoint")

    # -- volume-level page I/O (single-volume mode) ------------------------

    def write_page(self, page_no: int, data: bytes, **kwargs):
        return self._transport.call("write_page", page_no, data, **kwargs)

    def read_page(self, page_no: int):
        return self._transport.call("read_page", page_no)

    def archive_range(self, page_nos: List[int]) -> float:
        return self._transport.call("archive_range", list(page_nos))

    def scrub(self) -> float:
        return self._transport.call("scrub")

    # -- cluster operations (sharded mode) ---------------------------------

    def _require_sharded(self):
        if not self._transport.sharded:
            raise ReproError(
                "cluster operations need cluster.shards >= 2 in the config"
            )
        return self._transport.runtime

    def rebalance(self, scheduler=None):
        """Run the zone scheduler and execute its plan as live migration
        daemons; returns the :class:`MigrationReport`."""
        return self._require_sharded().rebalance(scheduler)

    def zone_occupancy(self, scheduler=None) -> Dict[str, int]:
        return self._require_sharded().zone_occupancy(scheduler)

    def wasted_fractions(self) -> Tuple[float, float]:
        return self._require_sharded().wasted_fractions()

    # -- workload-driver compatibility -------------------------------------

    def bind_engine(self, engine, **kwargs) -> None:
        """Adopt an external event kernel (what ``run_sysbench`` does).

        A sharded client is born on its runtime's kernel and cannot move;
        passing that same kernel is a no-op.  In-process access required.
        """
        transport = self._transport
        adopt = getattr(transport, "adopt_engine", None)
        if adopt is None:
            raise transport._no_capability("binding an event kernel")
        adopt(engine, **kwargs)

    def _proc(self, op: str, *args, **kwargs):
        transport = self._transport
        proc = getattr(transport, "proc", None)
        if proc is None:
            raise transport._no_capability("engine-native op generators")
        return proc(op, *args, **kwargs)

    def insert_proc(self, table: str, key: int, value: bytes):
        return self._proc("insert", table, key, value)

    def update_proc(self, table: str, key: int, value: bytes):
        return self._proc("update", table, key, value)

    def delete_proc(self, table: str, key: int):
        return self._proc("delete", table, key)

    def select_proc(self, table: str, key: int, ro_index: int = -1):
        if self._transport.sharded:
            return self._proc("select", table, key)
        return self._proc("select", table, key, ro_index=ro_index)

    def range_select_proc(self, table: str, low: int, high: int):
        return self._proc("range_select", table, low, high)

    # -- space -------------------------------------------------------------

    def compression_ratio(self) -> float:
        return self._transport.call("compression_ratio")

    @property
    def logical_bytes(self) -> int:
        return self._transport.call("space")[0]

    @property
    def physical_bytes(self) -> int:
        return self._transport.call("space")[1]

    def close(self) -> None:
        """Release the transport (idempotent)."""
        self._transport.close()


class PolarStore:
    """The unified entry point: ``PolarStore.open(config)`` in-process,
    ``PolarStore.connect(addr)`` over the wire.

    (Distinct from :class:`repro.storage.store.PolarStore`, the
    storage-layer volume this facade fronts — see MIGRATION.md.)
    """

    def __init__(self, *_args, **_kwargs) -> None:
        raise TypeError(
            "repro.api.PolarStore is not instantiated directly; call "
            "PolarStore.open(config) or PolarStore.connect(addr) for a "
            "client handle, or use repro.storage.store.PolarStore for a "
            "raw volume"
        )

    @classmethod
    def open(
        cls,
        config: Optional[Union[ReproConfig, dict]] = None,
        **sections,
    ) -> PolarStoreClient:
        """Open an in-process deployment described by ``config``.

        ``config`` may be a :class:`ReproConfig`, a nested dict in the
        same shape, or omitted entirely with sections given as keyword
        arguments: ``PolarStore.open(cluster={"shards": 4})``.
        """
        if config is None:
            config = ReproConfig.from_dict(sections)
        elif isinstance(config, dict):
            if sections:
                raise ValueError(
                    "pass either a config dict or section kwargs, not both"
                )
            config = ReproConfig.from_dict(config)
        elif isinstance(config, ReproConfig):
            if sections:
                raise ValueError(
                    "section kwargs cannot amend a ReproConfig instance; "
                    "use dataclasses.replace on the sections instead"
                )
        else:
            raise TypeError(
                f"config must be ReproConfig, dict, or None, "
                f"got {type(config).__name__}"
            )
        return PolarStoreClient(config)

    @classmethod
    def connect(
        cls,
        addr: Union[str, Tuple[str, int]],
        *,
        connections: int = 2,
        max_inflight: int = 256,
        queue_cap: int = 4096,
        timeout_s: float = 30.0,
    ) -> PolarStoreClient:
        """Connect to a ``python -m repro serve`` deployment.

        ``addr`` is ``"host:port"`` or a ``(host, port)`` tuple.  The
        returned client presents the identical surface as ``open`` —
        same ops, same result shapes, same simulated timings — over a
        pooled socket transport with a bounded in-flight window
        (``max_inflight``), a backpressure queue (``queue_cap``, full
        queue rejects), and per-request wall-clock ``timeout_s``.
        """
        from repro.net.client import SocketTransport

        return PolarStoreClient(
            transport=SocketTransport(
                addr,
                connections=connections,
                max_inflight=max_inflight,
                queue_cap=queue_cap,
                timeout_s=timeout_s,
            )
        )
