"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package, subsystem, and experiment inventory.
``demo``
    A 30-second end-to-end demonstration (replicated volume, dual-layer
    writes, reads, space report).
``experiments``
    List every benchmark target and the paper artifact it reproduces.
``metrics``
    Run a short OLTP workload and dump the volume-wide metric snapshot
    (JSON or Prometheus text), plus one traced write's per-layer
    latency breakdown on stderr.
``chaos``
    Run a seeded fault-injection schedule (bit flips, torn/dropped/
    misdirected writes, slow I/O, device failure, replica crash +
    rejoin, quorum loss) against a replicated volume and assert the
    durability invariants.  Exit 0 iff every invariant held.
``raft``
    Run the consensus scenario: real Raft elections on a replicated
    volume under symmetric and asymmetric partitions, clock skew, and
    leader crashes (including one with an AppendEntries in flight),
    asserting the split-brain invariants — one leader per term, no
    committed write lost, monotonic terms, fenced leaders commit
    nothing — plus a quorum redo-durability oracle.  Exit 0 iff every
    invariant held.  Artifacts are byte-deterministic (``--out``).
``bench``
    Run a trimmed, deterministic profile of a thread-scaling figure
    (Fig 12 cluster sweep or Fig 15 per-page log) on the event-driven
    stack and persist its table + JSON artifact.
``cluster``
    Run the seeded sharded-runtime scenario: ingest a skewed tenant
    layout across real replica groups, show zone A/B/C/D occupancy,
    live-migrate chunks under both schedulers, and persist the wasted-
    space / migration-traffic table + JSON artifact (Figures 10/11).
``perf``
    Wall-clock A/B harness: run pinned seeded scenarios serially and
    again with the codec memo/pool fast path, assert the outputs and
    simulated timings are identical, and write the speedup scoreboard
    to ``BENCH_wallclock.json``.  ``--check BASELINE`` is the CI
    perf-smoke regression gate.
``events``
    Run an observed scenario (sysbench / chaos / cluster) with the
    flight recorder active and print (or dump) the structured event
    log: page I/O, GC relocations, group-commit flushes, migrations,
    injected faults, codec selections, scrub repairs, SLO alerts,
    compaction tasks — all stamped with simulated time.  ``--load
    PATH`` replays and filters a previously-written dump instead of
    running anything.
``compaction``
    Drive the three consolidation policies (single-level / leveled /
    tiered) with the same flush workload over a compressible and an
    incompressible corpus, report write/space/read amplification from
    the unified ``storage.amp.*`` accountant, and check the
    B-tree-vs-LSM WA crossover (arXiv:2107.13987); persists a
    byte-deterministic table + JSON artifact.
``dash``
    Run an observed scenario and redraw a live terminal dashboard
    (queue depths, device utilization, latency percentiles,
    compression ratio, migration progress, SLO burn-rate sparklines)
    on every evaluator tick; ``--html PATH`` also writes a static,
    byte-deterministic HTML report at run end.
``serve``
    Host a PolarStore deployment (engine-bound volume or sharded
    cluster) on a TCP socket speaking the ``repro.net`` wire protocol;
    ``PolarStore.connect(addr)`` and ``python -m repro load`` are the
    clients.  Runs until interrupted.
``load``
    Drive a seeded open-loop arrival process (Poisson / bursty /
    diurnal) through the socket serving layer and report latency
    percentiles, admission rejections, and SLO verdicts.  With no
    ``--addr`` it spins up a loopback server in-process; the ``sim``
    half of the ``--out`` JSON artifact is byte-identical across runs
    of the same spec (the CI ``net-smoke`` gate).

Every command honours ``REPRO_PERF`` (``1``/``on`` for the default
fast path, or ``pool=N,memo=MiB,kind=process|thread|serial``); unset
or ``0`` runs the original serial code everywhere.  ``REPRO_OBS=1``
activates a flight recorder for any command (``capacity=N,
sample=io:8`` tunes it).  ``REPRO_WORKERS=N`` is the default for every
``--workers`` flag (``bench``, ``cluster``, ``perf``): N forked engine
worker processes with byte-identical output.
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = [
    ("fig2", "benchmarks/bench_fig2_granularity.py",
     "index granularity / input size / algorithm sweep"),
    ("fig5", "benchmarks/bench_fig5_algorithms.py",
     "lz4 vs zstd and the dual-layer collapse"),
    ("fig7", "benchmarks/bench_fig7_device_latency.py",
     "device latency vs compression ratio"),
    ("fig8", "benchmarks/bench_fig8_tail_latency.py",
     ">=4ms tail: PolarCSD1.0 vs 2.0"),
    ("fig9", "benchmarks/bench_fig9_scheduling.py",
     "cluster ratio dispersion + zone-scheduling model"),
    ("fig10-11", "benchmarks/bench_fig10_11_scheduling.py",
     "live-migration scheduling on the sharded runtime"),
    ("fig12", "benchmarks/bench_fig12_overall.py",
     "sysbench overall performance (N1/C1/N2/C2)"),
    ("fig13", "benchmarks/bench_fig13_ablation.py",
     "technique-by-technique ablation"),
    ("fig14", "benchmarks/bench_fig14_space_ablation.py",
     "space ablation across datasets"),
    ("fig15", "benchmarks/bench_fig15_perpage_log.py",
     "per-page log vs scattered logs"),
    ("fig16", "benchmarks/bench_fig16_comparison.py",
     "vs InnoDB / MyRocks"),
    ("table2", "benchmarks/bench_table2_costs.py",
     "compression ratios and cost per GB"),
    ("table3", "benchmarks/bench_table3_selection.py",
     "algorithm selection split per dataset"),
    ("ablation", "benchmarks/bench_ablation_design.py",
     "per-page-log space, L2P granularity, heavy compression"),
    ("extensions", "benchmarks/bench_ablation_extensions.py",
     "shared dictionaries + estimation selection (§6)"),
    ("gc", "benchmarks/bench_ablation_ftl_gc.py",
     "FTL GC policy / over-provisioning"),
    ("contention", "benchmarks/bench_gen1_contention.py",
     "gen-1 host-FTL contention study"),
    ("micro", "benchmarks/bench_codec_micro.py",
     "codec wall-time microbenchmarks"),
    ("ec-dedup", "benchmarks/bench_ablation_ec_dedup.py",
     "erasure coding vs replication; dedup negative result (§6)"),
    ("innodb-modes", "benchmarks/bench_ablation_innodb_modes.py",
     "InnoDB table vs page compression vs PolarStore (§2.2.1)"),
    ("placement", "benchmarks/bench_ablation_placement.py",
     "ratio-aware chunk placement (extension)"),
]


def cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — PolarStore reproduction (FAST 2026)")
    print(__doc__.split("Commands")[0].strip())
    subsystems = [
        ("repro.compression", "LZ4 + zstd-like codecs, dictionaries, "
                              "estimator, Algorithm-1 selector"),
        ("repro.csd", "PolarCSD simulator: FTL, NAND, GC, TRIM, faults"),
        ("repro.storage", "storage node, replication, WAL recovery, "
                          "per-page log, heavy archive, tiering"),
        ("repro.db", "pages, B+tree, buffer pool, RW/RO compute nodes"),
        ("repro.baselines", "InnoDB / MyRocks / log-structured baselines"),
        ("repro.cluster", "zone scheduler, migration, cost model"),
        ("repro.workloads", "datasets, fio buffers, sysbench driver"),
    ]
    print("\nsubsystems:")
    for name, blurb in subsystems:
        print(f"  {name:<20} {blurb}")
    return 0


def cmd_experiments(_args) -> int:
    print(f"{'id':<11} {'target':<46} reproduces")
    for exp_id, target, blurb in EXPERIMENTS:
        print(f"{exp_id:<11} {target:<46} {blurb}")
    print("\nrun all with: pytest benchmarks/ --benchmark-only")
    return 0


def cmd_demo(_args) -> int:
    from repro.api import PolarStore
    from repro.common.units import MiB
    from repro.workloads.datagen import dataset_pages

    print("building a 3-replica PolarStore volume (PolarCSD2.0) ...")
    client = PolarStore.open(store={"volume_bytes": 64 * MiB})
    pages = dataset_pages("finance", 16, seed=0)
    for page_no, page in enumerate(pages):
        client.write_page(page_no, page)
    now = client.now_us
    result = client.read_page(3)
    assert result.data == pages[3]
    leader = client.store.leader
    print(f"wrote {len(pages)} pages; read one back in "
          f"{result.done_us - now:.0f}us (simulated)")
    print(f"logical  : {leader.logical_used_bytes // 1024} KiB")
    print(f"software : {leader.device_used_bytes // 1024} KiB "
          f"(4 KiB-aligned blocks)")
    print(f"physical : {leader.physical_used_bytes // 1024} KiB of NAND")
    print(f"dual-layer ratio: {client.compression_ratio():.2f}x")
    return 0


def cmd_metrics(args) -> int:
    from repro.common.units import MiB

    if args.rows < 1:
        print("metrics: --rows must be at least 1", file=sys.stderr)
        return 2
    from repro.api import PolarStore
    from repro.obs.export import to_json, to_prometheus
    from repro.workloads.sysbench import prepare_table, run_sysbench

    db = PolarStore.open(store={"volume_bytes": 64 * MiB})
    loaded_us = prepare_table(db, rows=args.rows, seed=0)
    result = run_sysbench(
        db,
        "read_write",
        duration_s=args.duration,
        threads=4,
        key_range=args.rows,
        start_us=loaded_us,
        seed=0,
    )

    # One explicitly traced write so the per-layer span breakdown of a
    # single request can be inspected (spans sum to end-to-end latency).
    start = loaded_us + result.elapsed_s * 1e6
    payload = (b"trace-me" * 512)[: 16 * 1024]
    commit = db.store.write_page(start, 1, payload)
    trace = db.metrics.tracer.last
    if trace is not None:
        end_to_end = commit.commit_us - start
        print("# one traced OLTP page write "
              f"({end_to_end:.1f}us end-to-end):", file=sys.stderr)
        print(trace.render(), file=sys.stderr)
        breakdown = trace.breakdown()
        total = sum(breakdown.values())
        print(f"# span sum {total:.1f}us vs end-to-end {end_to_end:.1f}us "
              f"(delta {abs(total - end_to_end):.3f}us)", file=sys.stderr)
        print("# per-layer:", file=sys.stderr)
        for layer, us in sorted(trace.layer_breakdown().items()):
            print(f"#   {layer:<12} {us:10.1f}us "
                  f"({100.0 * us / total:5.1f}%)", file=sys.stderr)
    print(f"# workload: read_write, {result.transactions} txns, "
          f"{result.tps:.0f} tps (simulated)", file=sys.stderr)

    if args.format == "prometheus":
        print(to_prometheus(db.metrics))
    else:
        print(to_json(db.metrics))
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos.harness import run_chaos

    if args.ops < 50:
        print("chaos: --ops must be at least 50 (the schedule needs "
              "room for crash, rejoin, and quorum phases)", file=sys.stderr)
        return 2
    report = run_chaos(
        seed=args.seed,
        ops=args.ops,
        verbose=args.verbose,
        min_data_faults=args.min_faults,
    )
    print(report.render())
    if args.metrics:
        from repro.obs.export import to_json

        print(to_json(report.metrics))
    return 0 if report.passed else 1


def cmd_raft(args) -> int:
    from repro.consensus.scenario import run_raft

    report = run_raft(
        seed=args.seed,
        quick=not args.full,
        verbose=args.verbose,
    )
    print(report.render())
    if args.out is not None:
        path = report.write_artifact(args.out)
        print(f"artifact: {path}", file=sys.stderr)
    if args.metrics:
        from repro.obs.export import to_json

        print(to_json(report.metrics))
    return 0 if report.passed else 1


def _resolved_workers(args) -> int:
    """``--workers`` if given, else ``REPRO_WORKERS``, else 1 (serial)."""
    from repro.engine.parallel import workers_from_env

    if args.workers is not None:
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
        return args.workers
    return workers_from_env() or 1


def cmd_bench(args) -> int:
    from repro.bench.figures import FIGURES

    runner = FIGURES[args.fig]
    runner(out_dir=args.out, quick=args.quick,
           workers=_resolved_workers(args))
    return 0


def cmd_cluster(args) -> int:
    from repro.bench.cluster_fig import run_fig10_11

    if args.shards < 2:
        print("cluster: --shards must be at least 2", file=sys.stderr)
        return 2
    if args.chunks < args.shards:
        print("cluster: --chunks must be at least --shards", file=sys.stderr)
        return 2
    result = run_fig10_11(
        out_dir=args.out,
        shards=args.shards,
        chunks=args.chunks,
        seed=args.seed,
        workers=_resolved_workers(args),
    )
    aware = dict(zip(result.columns, result.rows[-1]))
    print(f"compression-aware: {aware['tasks']} tasks moved "
          f"{aware['moved_pages']} pages "
          f"({aware['moved_logical_mib']} MiB logical -> "
          f"{aware['moved_physical_mib']} MiB physical) "
          f"in {aware['makespan_ms']} ms simulated")
    return 0


def cmd_events(args) -> int:
    from repro.obs.events import FlightRecorder, parse_sample_spec
    from repro.obs.scenarios import run_observed

    if args.load is not None:
        recorder = FlightRecorder.load(args.load)
    else:
        if args.scenario is None:
            print("events: a scenario (or --load PATH) is required",
                  file=sys.stderr)
            return 2
        sample = parse_sample_spec(args.sample) if args.sample else None
        run = run_observed(
            args.scenario,
            seed=args.seed,
            quick=not args.full,
            capacity=args.capacity,
            sample=sample,
        )
        recorder = run.recorder
        print(f"# scenario {run.name} seed {run.seed}: "
              f"{recorder.total_emitted} events recorded, "
              f"verdict {'PASS' if run.passed else 'FAIL'}",
              file=sys.stderr)
        if args.out is not None:
            if args.binary:
                recorder.dump_binary(args.out)
            else:
                recorder.dump_jsonl(args.out)
            print(f"# wrote {args.out}", file=sys.stderr)
    selected = recorder.events(
        channel=args.channel,
        kind=args.kind,
        since_us=args.since_us,
        until_us=args.until_us,
        limit=args.limit,
    )
    for event in selected:
        print(event.render())
    summary = recorder.summary()
    print("# channels: " + " ".join(
        f"{ch}={row['emitted']}" for ch, row in summary.items()
    ), file=sys.stderr)
    if args.load is None and not run.passed:
        return 1
    return 0


def cmd_compaction(args) -> int:
    from repro.bench.write_amp import run_write_amp

    _, crossover = run_write_amp(
        out_dir=args.out,
        quick=args.quick,
        policies=args.policy,
        seed=args.seed,
    )
    if crossover is False:
        print("FAIL: WA crossover does not hold", file=sys.stderr)
        return 1
    return 0


def cmd_dash(args) -> int:
    from repro.obs.dash import live_dash
    from repro.obs.report import write_html

    run = live_dash(
        args.scenario,
        seed=args.seed,
        quick=not args.full,
        interval_us=args.interval_us,
        ansi=not args.no_ansi,
    )
    if args.html is not None:
        write_html(run, args.html)
        print(f"wrote {args.html}", file=sys.stderr)
    return 0 if run.passed else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.api.config import ReproConfig
    from repro.net.server import PolarStoreServer

    doc = {
        "engine": {"enabled": not args.no_engine},
        "net": {"window": args.window},
        "store": {"seed": args.seed},
    }
    if args.shards:
        doc["cluster"] = {"shards": args.shards}
    server = PolarStoreServer(ReproConfig.from_dict(doc))

    async def run() -> None:
        host, port = await server.start(args.host, args.port)
        print(
            f"serving PolarStore on {host}:{port} "
            f"(window {args.window}, "
            f"engine {'off' if args.no_engine else 'on'}, "
            f"shards {args.shards or 'single volume'}) — ctrl-c to stop",
            flush=True,
        )
        await server._server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_load(args) -> int:
    from repro.api import PolarStore
    from repro.api.config import ReproConfig
    from repro.net.loadgen import ArrivalSpec, run_load
    from repro.net.server import serve_in_thread

    spec = ArrivalSpec(
        process=args.arrival,
        rate_per_s=args.rate,
        requests=min(args.requests, 300) if args.quick else args.requests,
        seed=args.seed,
        keys=args.keys,
    )
    handle = None
    if args.addr is None:
        config = ReproConfig.from_dict({
            "engine": {"enabled": True},
            "net": {"window": args.window},
            "store": {"seed": args.seed},
        })
        handle = serve_in_thread(config, port=0)
        addr = handle.addr
        print(f"# loopback server on {addr[0]}:{addr[1]} "
              f"(window {args.window})", file=sys.stderr)
    else:
        addr = args.addr
    client = PolarStore.connect(addr, timeout_s=args.timeout_s)
    try:
        report = run_load(client.transport, spec)
    finally:
        client.close()
        if handle is not None:
            handle.stop()
    print(report.render())
    if args.out is not None:
        report.write_artifact(args.out)
        print(f"artifact: {args.out}", file=sys.stderr)
    if report.errors or not report.completed:
        return 1
    return 0


_UNSET = object()


def shared_options(
    *,
    seed=_UNSET,
    seed_help: str = "",
    out=_UNSET,
    out_help: str = "",
    out_metavar: str = "DIR",
    quick_help=None,
) -> argparse.ArgumentParser:
    """The one definition of the CLI's recurring options.

    Every subcommand that takes ``--seed``/``--out``/``--quick`` gets
    them from this parent parser, so flag names, types, and help
    phrasing cannot drift per command (they used to).  Pass ``seed=``/
    ``out=`` defaults to include those flags; ``quick_help`` a string
    to include ``--quick``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if seed is not _UNSET:
        parent.add_argument(
            "--seed", type=int, default=seed,
            help=seed_help or (
                "deterministic RNG seed"
                + ("" if seed is None else f" (default: {seed})")
            ),
        )
    if out is not _UNSET:
        parent.add_argument(
            "--out", default=out, metavar=out_metavar,
            help=out_help or "directory for the table + JSON artifacts "
                             "(default: benchmarks/results)",
        )
    if quick_help is not None:
        parent.add_argument(
            "--quick", action="store_true", help=quick_help,
        )
    return parent


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["perf"]:
        # Forwarded wholesale: the harness owns its own argparse, and
        # nesting its optionals under a subparser would swallow them.
        from repro.perf.harness import main as perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PolarStore reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="package and subsystem inventory")
    sub.add_parser("demo", help="30-second end-to-end demonstration")
    sub.add_parser("experiments", help="list benchmark targets")
    metrics_p = sub.add_parser(
        "metrics",
        help="run a short workload and dump the metric snapshot",
    )
    metrics_p.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
        help="snapshot format on stdout (default: json)",
    )
    metrics_p.add_argument(
        "--rows", type=int, default=400,
        help="sysbench table rows (default: 400)",
    )
    metrics_p.add_argument(
        "--duration", type=float, default=0.2,
        help="simulated seconds of read_write load (default: 0.2)",
    )
    chaos_p = sub.add_parser(
        "chaos",
        help="run the fault-injection harness and check invariants",
        parents=[shared_options(
            seed=42,
            seed_help="RNG seed for both the workload and the fault "
                      "plan (default: 42)",
        )],
    )
    chaos_p.add_argument(
        "--ops", type=int, default=700,
        help="operations in the workload schedule (default: 700)",
    )
    chaos_p.add_argument(
        "--min-faults", type=int, default=100,
        help="I6 floor on injected data faults; scale down together "
             "with --ops for a quick smoke run (default: 100)",
    )
    chaos_p.add_argument(
        "--verbose", action="store_true",
        help="narrate crash/rejoin/scrub events as they happen",
    )
    chaos_p.add_argument(
        "--metrics", action="store_true",
        help="also dump the final metric snapshot as JSON",
    )
    raft_p = sub.add_parser(
        "raft",
        help="run the consensus scenario (elections, partitions, leader "
             "crashes) and assert the split-brain invariants",
        parents=[shared_options(
            seed=11,
            seed_help="schedule seed (default: 11)",
            out=None,
            out_help="write the byte-deterministic raft_scenario.json here",
        )],
    )
    raft_p.add_argument(
        "--full", action="store_true",
        help="full-size workload (default: quick smoke profile)",
    )
    raft_p.add_argument(
        "--verbose", action="store_true",
        help="narrate elections, partitions, and crashes as they happen",
    )
    raft_p.add_argument(
        "--metrics", action="store_true",
        help="also dump the final metric snapshot as JSON",
    )
    bench_p = sub.add_parser(
        "bench",
        help="run a deterministic thread-scaling figure profile",
        parents=[shared_options(
            out=None,
            quick_help="trimmed budgets for smoke/CI runs (recommended)",
        )],
    )
    bench_p.add_argument(
        "--fig", choices=("12", "15"), required=True,
        help="which figure to profile (12: cluster sweep, 15: per-page log)",
    )
    bench_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan independent figure cells across N engine worker "
             "processes; byte-identical output (default: $REPRO_WORKERS, "
             "else 1)",
    )
    cluster_p = sub.add_parser(
        "cluster",
        help="run the sharded-runtime live-migration scenario (Fig 10/11)",
        parents=[shared_options(
            seed=0,
            seed_help="seed for row data (default: 0)",
            out=None,
        )],
    )
    cluster_p.add_argument(
        "--shards", type=int, default=4,
        help="replica groups in the fleet (default: 4)",
    )
    cluster_p.add_argument(
        "--chunks", type=int, default=8,
        help="chunks to ingest before rebalancing (default: 8; the "
             "benchmark profile uses 16)",
    )
    cluster_p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="host each fleet's replica groups in N per-shard engine "
             "worker processes (epoch-barrier synchronized; byte-"
             "identical output; default: $REPRO_WORKERS, else 1)",
    )
    sub.add_parser(
        "perf",
        help="wall-clock A/B harness (serial vs codec memo/pool fast "
             "path); see 'perf --help' for its own options",
    )
    events_p = sub.add_parser(
        "events",
        help="run an observed scenario and print/dump the flight-"
             "recorder event log (or --load a previous dump)",
        parents=[shared_options(
            seed=None,
            seed_help="scenario seed (default: the scenario's pinned seed)",
            out=None,
            out_help="also write the dump here (JSONL; --binary for the "
                     "compact framing)",
            out_metavar="PATH",
        )],
    )
    events_p.add_argument(
        "scenario", nargs="?",
        choices=("sysbench", "chaos", "cluster", "raft"),
        help="which observed scenario to run (omit with --load)",
    )
    events_p.add_argument(
        "--load", default=None, metavar="PATH",
        help="replay/filter a previously-written dump instead of running",
    )
    events_p.add_argument(
        "--full", action="store_true",
        help="full-size workload (default: quick smoke profile)",
    )
    events_p.add_argument(
        "--binary", action="store_true",
        help="write --out in the binary format instead of JSONL",
    )
    events_p.add_argument(
        "--capacity", type=int, default=65536,
        help="ring capacity in events (default: 65536)",
    )
    events_p.add_argument(
        "--sample", default=None, metavar="SPEC",
        help="per-channel sampling, e.g. 'io=8,gc=4,compaction=1' "
             "keeps 1 in N",
    )
    events_p.add_argument(
        "--channel", default=None,
        help="only print events from this channel (io, gc, commit, "
             "migration, fault, codec, scrub, db, slo, election, "
             "compaction, net)",
    )
    events_p.add_argument(
        "--kind", default=None,
        help="only print events of this kind",
    )
    events_p.add_argument(
        "--since-us", type=float, default=None,
        help="only print events at/after this simulated time",
    )
    events_p.add_argument(
        "--until-us", type=float, default=None,
        help="only print events before this simulated time",
    )
    events_p.add_argument(
        "--limit", type=int, default=None,
        help="print only the last N matching events",
    )
    compaction_p = sub.add_parser(
        "compaction",
        help="measure write/space/read amplification per consolidation "
             "policy and check the B-tree-vs-LSM WA crossover",
        parents=[shared_options(
            seed=7,
            seed_help="workload seed (default: 7)",
            out=None,
            out_help="artifact directory (default: benchmarks/results)",
            quick_help="smaller corpus (the CI compaction-smoke profile)",
        )],
    )
    compaction_p.add_argument(
        "--policy", action="append", default=None,
        choices=("single-level", "leveled", "tiered"),
        help="run only this policy (repeatable; default: all three, "
             "which also enables the crossover check)",
    )
    dash_p = sub.add_parser(
        "dash",
        help="run an observed scenario with a live terminal dashboard",
        parents=[shared_options(
            seed=None,
            seed_help="scenario seed (default: the scenario's pinned seed)",
        )],
    )
    dash_p.add_argument(
        "scenario", choices=("sysbench", "chaos", "cluster", "raft"),
        help="which observed scenario to run",
    )
    dash_p.add_argument(
        "--full", action="store_true",
        help="full-size workload (default: quick smoke profile)",
    )
    dash_p.add_argument(
        "--interval-us", type=float, default=2_000.0,
        help="simulated microseconds between dashboard refreshes "
             "(default: 2000)",
    )
    dash_p.add_argument(
        "--no-ansi", action="store_true",
        help="append frames instead of redrawing in place (for logs "
             "and pipes)",
    )
    dash_p.add_argument(
        "--html", default=None, metavar="PATH",
        help="write the static self-contained HTML report here at "
             "run end",
    )
    serve_p = sub.add_parser(
        "serve",
        help="host a PolarStore deployment on a TCP socket "
             "(repro.net wire protocol); runs until interrupted",
        parents=[shared_options(
            seed=0,
            seed_help="storage seed of the hosted volume (default: 0)",
        )],
    )
    serve_p.add_argument(
        "--host", default=None,
        help="bind address (default: config net.host, 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=None,
        help="TCP port; 0 picks an ephemeral one "
             "(default: config net.port, 7411)",
    )
    serve_p.add_argument(
        "--window", type=int, default=64,
        help="admission window: simulated in-flight ops beyond this "
             "are rejected, not queued (default: 64)",
    )
    serve_p.add_argument(
        "--shards", type=int, default=0,
        help="host a sharded cluster runtime instead of a single "
             "volume (default: 0 = single volume)",
    )
    serve_p.add_argument(
        "--no-engine", action="store_true",
        help="serve the analytic synchronous path (no event kernel, "
             "no pipelining, no admission control)",
    )
    load_p = sub.add_parser(
        "load",
        help="drive a seeded open-loop arrival process through the "
             "socket serving layer and report latency/rejection SLOs",
        parents=[shared_options(
            seed=0,
            seed_help="arrival-process and workload seed (default: 0)",
            out=None,
            out_help="write the JSON artifact here (its 'sim' half is "
                     "byte-identical across runs of the same spec)",
            out_metavar="PATH",
            quick_help="cap the run at 300 requests (CI smoke profile)",
        )],
    )
    load_p.add_argument(
        "--addr", default=None, metavar="HOST:PORT",
        help="server to drive (default: spin up a loopback server "
             "in-process for the run)",
    )
    load_p.add_argument(
        "--arrival", choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="arrival process shape (default: poisson)",
    )
    load_p.add_argument(
        "--rate", type=float, default=20_000.0,
        help="mean offered load in requests per simulated second "
             "(default: 20000)",
    )
    load_p.add_argument(
        "--requests", type=int, default=1200,
        help="total requests in the schedule (default: 1200)",
    )
    load_p.add_argument(
        "--keys", type=int, default=512,
        help="preloaded keyspace size (default: 512)",
    )
    load_p.add_argument(
        "--window", type=int, default=64,
        help="loopback server admission window (default: 64; ignored "
             "with --addr)",
    )
    load_p.add_argument(
        "--timeout-s", type=float, default=60.0,
        help="per-request wall-clock timeout (default: 60)",
    )
    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "experiments": cmd_experiments,
        "metrics": cmd_metrics,
        "chaos": cmd_chaos,
        "raft": cmd_raft,
        "bench": cmd_bench,
        "cluster": cmd_cluster,
        "events": cmd_events,
        "compaction": cmd_compaction,
        "dash": cmd_dash,
        "serve": cmd_serve,
        "load": cmd_load,
    }
    if args.command is None:
        parser.print_help()
        return 2
    # Honour REPRO_PERF for every command: an opted-in fast path changes
    # wall-clock only, never a simulated result, so it is safe to apply
    # globally.  The perf harness manages its own A/B runtimes per run.
    from repro.perf.runtime import configure_from_env

    configure_from_env()
    # Likewise REPRO_OBS: an always-on flight recorder is cheap (ring
    # append per event) and never changes a simulated result.
    from repro.obs.events import configure_from_env as obs_from_env

    obs_from_env()
    return handlers[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout was piped into head/less and closed early; not an error.
        sys.exit(0)
