"""Setuptools shim.

Keeping the legacy ``setup.py`` path (and no ``[build-system]`` table in
pyproject.toml) lets ``pip install -e .`` work in fully offline
environments, where PEP 517 build isolation would try to download
setuptools/wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PolarStore reproduction: dual-layer compression for cloud-native "
        "databases (FAST 2026)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
