#!/usr/bin/env python
"""Quickstart: a replicated PolarStore volume with dual-layer compression.

Creates a three-replica PolarStore volume on simulated PolarCSD2.0
devices, writes database pages through the software compression layer,
reads them back, and prints the space accounting of both compression
layers.

Run:  python examples/quickstart.py
"""

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.storage.node import NodeConfig
from repro.storage.store import CompressionMode, PolarStore
from repro.workloads.datagen import dataset_pages


def main() -> None:
    # A replicated volume: 1 leader + 2 followers, all features on.
    store = PolarStore(NodeConfig(), volume_bytes=64 * MiB, seed=1)

    # Write 32 "finance" pages through the normal dual-layer write path:
    # the software layer picks lz4 or zstd per page (Algorithm 1) and
    # packs the result into 4 KB blocks; the simulated PolarCSD then
    # compresses each block again in hardware.
    pages = dataset_pages("finance", 32, seed=0)
    now = 0.0
    for page_no, page in enumerate(pages):
        committed = store.write_page(now, page_no, page)
        now = committed.commit_us
    print(f"wrote {len(pages)} pages; last commit at t={now:.0f}us (simulated)")

    # Read one back — decompression is transparent.
    result = store.read_page(now, 7)
    assert result.data == pages[7]
    print(f"read page 7 in {result.done_us - now:.1f}us "
          f"({result.io_reads} I/O)")

    # One page stored raw, bypassing software compression (mode flag).
    store.write_page(now, 100, pages[0], mode=CompressionMode.NONE)

    # Archive a cold range with heavy compression (one big segment).
    store.archive_range(now + 1e6, list(range(8)))
    check = store.read_page(now + 2e6, 3)
    assert check.data == pages[3]
    print("archived pages 0-7 as a heavy-compression segment; reads still "
          "round-trip")

    # Space accounting across the two layers.
    leader = store.leader
    logical = leader.logical_used_bytes
    software = leader.device_used_bytes       # 4 KB-aligned blocks
    physical = leader.physical_used_bytes     # NAND bytes after hw gzip
    print(f"\nlogical data:     {logical / DB_PAGE_SIZE:.0f} pages "
          f"({logical // 1024} KiB)")
    print(f"after software:   {software // 1024} KiB in 4 KiB blocks")
    print(f"after hardware:   {physical // 1024} KiB of NAND")
    print(f"dual-layer compression ratio: {store.compression_ratio():.2f}x")


if __name__ == "__main__":
    main()
