#!/usr/bin/env python
"""Replaying a block trace against every simulated device.

Generates a skewed 70/30 read/write trace with fio-style compressible
payloads and replays it against the four device models of Figure 7 plus
an Optane performance device — showing where each one wins.

Run:  python examples/device_trace_replay.py
"""

import dataclasses

from repro.common.units import MiB
from repro.csd.device import PlainSSD, PolarCSD
from repro.csd.specs import (
    OPTANE_P5800X,
    P4510,
    P5510,
    POLARCSD1,
    POLARCSD2,
)
from repro.workloads.trace import generate_trace, prefill, replay_trace


def make_device(spec):
    sized = dataclasses.replace(
        spec,
        logical_capacity=256 * MiB,
        physical_capacity=(64 if spec.has_compression else 256) * MiB,
        jitter_sigma=0.0,
    )
    if sized.has_compression:
        return PolarCSD(sized, block_capacity=1 * MiB)
    return PlainSSD(sized)


def main() -> None:
    trace = generate_trace(
        n_ios=600, read_fraction=0.7, lba_space=1024, zipf_s=0.9,
        mean_interarrival_us=2000.0, seed=11,
    )
    print(f"trace: {len(trace)} I/Os, 70% reads, zipf 0.9, "
          "compressibility 2.5\n")
    print(f"{'device':<22} {'read avg':>9} {'read p95':>9} "
          f"{'write avg':>10} {'physical':>9}")
    for spec in (P4510, POLARCSD1, P5510, POLARCSD2, OPTANE_P5800X):
        device = make_device(spec)
        fill_done = prefill(device, trace, compressibility=2.5)
        report = replay_trace(
            device, trace, compressibility=2.5, assume_prefilled=True,
            time_offset_us=fill_done,
        )
        physical = getattr(device, "physical_used_bytes", 0)
        print(f"{spec.name:<22} {report.reads.mean_us:>7.1f}us "
              f"{report.reads.p95_us:>7.1f}us "
              f"{report.writes.mean_us:>8.1f}us "
              f"{physical / MiB:>7.1f}MB")
    print("\nPolarCSDs: fastest writes + least NAND; Optane: fastest "
          "everything but smallest and most expensive — hence the redo "
          "bypass design (Opt#1).")


if __name__ == "__main__":
    main()
