#!/usr/bin/env python
"""An OLTP day-in-the-life on the full stack.

Builds a PolarDB instance (RW node + RO node over replicated PolarStore),
loads a table, runs a sysbench-style mixed workload, and reports the
throughput/latency and space numbers the storage layer produced — the
miniature version of the paper's §5.1 evaluation.

Run:  python examples/oltp_simulation.py
"""

from repro.common.units import MiB
from repro.db.database import PolarDB
from repro.storage.node import NodeConfig
from repro.workloads.sysbench import (
    WORKLOAD_LABELS,
    prepare_table,
    run_sysbench,
)


def main() -> None:
    db = PolarDB(
        config=NodeConfig(),
        volume_bytes=128 * MiB,
        buffer_pool_pages=12,   # small pool => I/O-bound, like the paper
        ro_nodes=1,
        seed=42,
    )
    print("loading 2000 rows ...")
    now = prepare_table(db, rows=2000, seed=42)
    print(f"loaded at simulated t={now / 1e6:.3f}s; "
          f"compression ratio {db.compression_ratio():.2f}x")

    for workload in ("point_select", "read_only", "read_write"):
        run = run_sysbench(
            db, workload, duration_s=30.0, threads=16, key_range=2000,
            start_us=now, seed=7, max_transactions=60,
        )
        now += 40e6
        print(f"{WORKLOAD_LABELS[workload]:>5}: {run.transactions} txns, "
              f"{run.tps:,.0f} tps, avg {run.avg_latency_us:,.0f}us, "
              f"P95 {run.p95_latency_us:,.0f}us")

    # Read from the read-only node (pages are regenerated from redo by the
    # storage layer — the RW node never wrote a page back).
    result = db.select(now, "sbtest", 123, ro_index=0)
    print(f"\nRO-node point select: {result.latency_us(now):,.0f}us, "
          f"{result.io_reads} storage I/O")

    print(f"\nfinal space: logical {db.logical_bytes // 1024} KiB, "
          f"physical {db.physical_bytes // 1024} KiB "
          f"({db.compression_ratio():.2f}x)")


if __name__ == "__main__":
    main()
