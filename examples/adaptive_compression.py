#!/usr/bin/env python
"""Algorithm 1 in action: adaptive lz4/zstd selection per page.

Shows why the choice is not a fixed trade-off: for some pages zstd's
extra squeeze saves a whole 4 KB I/O block (worth ~12-14us of read
latency), for others it only costs decompression time.  The selector
weighs bytes-saved against extra microseconds at the paper's 300 B/us
threshold.

Run:  python examples/adaptive_compression.py
"""

from repro.common.units import LBA_SIZE
from repro.compression.base import get_codec
from repro.compression.selector import AlgorithmSelector
from repro.workloads.datagen import DATASETS, dataset_pages


def main() -> None:
    selector = AlgorithmSelector()
    print(f"{'dataset':<14} {'page':>4} {'lz4':>7} {'zstd':>7} "
          f"{'benefit':>8} {'overhead':>9} {'choice':>7}")
    totals = {}
    for name in DATASETS:
        picks = []
        for page_no, page in enumerate(dataset_pages(name, 8, seed=4)):
            decision = selector.select(page)
            picks.append(decision.codec)
            if page_no < 3:
                lz4_len = len(get_codec("lz4").compress(page))
                zstd_len = len(get_codec("zstd").compress(page))
                print(f"{name:<14} {page_no:>4} {lz4_len:>7} {zstd_len:>7} "
                      f"{decision.benefit_bytes:>7.0f}B "
                      f"{decision.overhead_us:>8.1f}us "
                      f"{decision.codec:>7}")
        totals[name] = picks.count("zstd") / len(picks)

    print("\nzstd share per dataset (Table 3 of the paper):")
    paper = {"finance": "73.1%", "fnb": "41.3%", "wiki": "52.4%",
             "air_transport": "51.6%"}
    for name, share in totals.items():
        print(f"  {name:<14} {share:>5.0%}   (paper: {paper[name]})")

    # The CPU gate: under load, the selector doesn't even evaluate.
    busy = selector.select(dataset_pages("wiki", 1, seed=9)[0],
                           cpu_utilization=0.5)
    print(f"\nat 50% CPU the selector skips evaluation and uses "
          f"{busy.codec} (evaluated={busy.evaluated})")

    # The update gate: small updates stick with the page's last codec.
    page = dataset_pages("wiki", 1, seed=10)[0]
    first = selector.select(page)
    small_update = selector.select(page, update_percent=0.05,
                                   last_used=first.codec)
    print(f"a 5% update reuses the previous codec: {small_update.codec} "
          f"(evaluated={small_update.evaluated})")


if __name__ == "__main__":
    main()
