#!/usr/bin/env python
"""Compression-aware cluster scheduling (§4.2).

Synthesizes a cluster whose chunks have heterogeneous compression ratios
(placed with the naive logical-usage-only policy), shows the stranded
space, then runs the zone scheduler of Figure 9b and shows the
convergence of Figures 10-11.

Run:  python examples/cluster_scheduling.py
"""

from repro.cluster.cluster import synthesize_cluster
from repro.cluster.scheduler import CompressionAwareScheduler, band_coverage


def describe(cluster, c_l, c_h, label):
    ratios = sorted(s.compression_ratio for s in cluster.servers)
    coverage = band_coverage(cluster, c_l, c_h)
    print(f"{label}:")
    print(f"  server ratios: min {ratios[0]:.2f} / median "
          f"{ratios[len(ratios) // 2]:.2f} / max {ratios[-1]:.2f}")
    print(f"  in band [{c_l:.2f}, {c_h:.2f}]: {coverage:.1%} of servers")
    print(f"  stranded logical space: "
          f"{cluster.wasted_logical_fraction():.2%}, stranded physical: "
          f"{cluster.wasted_physical_fraction():.2%}")


def main() -> None:
    cluster = synthesize_cluster(n_servers=60, mean_ratio=3.55, seed=7)
    scheduler = CompressionAwareScheduler(band_width=0.10)
    c_l, c_h = scheduler.band(cluster)

    describe(cluster, c_l, c_h, "before scheduling (Figure 10a/11a)")
    tasks = scheduler.rebalance(cluster)
    print(f"\nscheduler issued {len(tasks)} migration tasks\n")
    describe(cluster, c_l, c_h, "after scheduling (Figure 10b/11b)")

    # The §4.2.3 trade-off: a wider band needs fewer tasks.
    for width in (0.06, 0.10, 0.20):
        fresh = synthesize_cluster(n_servers=60, mean_ratio=3.55, seed=7)
        n = len(CompressionAwareScheduler(band_width=width).rebalance(fresh))
        print(f"band +/-{width:.0%}: {n} migration tasks")


if __name__ == "__main__":
    main()
