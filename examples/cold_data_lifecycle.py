#!/usr/bin/env python
"""The cold-data lifecycle: normal -> heavy -> object storage -> crash.

Walks one dataset through every space-saving tier the system offers and
finishes with a crash recovery, printing space and latency at each step:

1. normal dual-layer compression (hot data),
2. heavy compression (warm archival, still local, §3.2.3),
3. object-storage tiering (cold archival, §6),
4. WAL crash recovery of the storage node.

Run:  python examples/cold_data_lifecycle.py
"""

from repro.common.units import DB_PAGE_SIZE, MiB
from repro.storage.node import NodeConfig
from repro.storage.recovery import recover_node
from repro.storage.store import build_node
from repro.storage.tiering import ObjectStore, TieringManager
from repro.workloads.datagen import dataset_pages


def space(node, label):
    print(f"  [{label}] logical {node.logical_used_bytes // 1024:5d} KiB | "
          f"device {node.device_used_bytes // 1024:5d} KiB | "
          f"NAND {node.physical_used_bytes // 1024:5d} KiB")


def main() -> None:
    node = build_node("lifecycle", NodeConfig(), volume_bytes=64 * MiB)
    tiering = TieringManager(node, ObjectStore())
    pages = dataset_pages("finance", 24, seed=6)

    print("1) hot: normal dual-layer writes")
    now = 0.0
    for page_no, page in enumerate(pages):
        now = node.write_page(now, page_no, page).done_us
    space(node, "normal")
    hot = node.read_page(now, 2)
    print(f"   hot read: {hot.done_us - now:.0f}us")

    print("\n2) warm: heavy-compress pages 0-11 (local archive)")
    now = node.archive_range(now, list(range(12)))
    space(node, "heavy")
    warm = node.read_page(now, 2)
    print(f"   warm read (whole-segment decompress, buffered after): "
          f"{warm.done_us - now:.0f}us")

    print("\n3) cold: tier pages 12-23 to object storage")
    archived, now = tiering.archive_to_object_store(now, list(range(12, 24)))
    space(node, "tiered")
    print(f"   object: {archived.compressed_len // 1024} KiB for "
          f"{len(archived.page_nos)} pages "
          f"({12 * DB_PAGE_SIZE / archived.compressed_len:.1f}x)")
    cold = tiering.read_page(now, 15)
    print(f"   cold read from object storage: "
          f"{(cold.done_us - now) / 1000:.1f}ms")
    assert cold.data == pages[15]

    print("\n4) crash: rebuild the node from its WAL")
    recovered = recover_node(node)
    check = recovered.read_page(now, 2)
    assert check.data == pages[2]
    print(f"   recovered {len(recovered.index)} index entries; "
          f"page 2 reads correctly")
    space(recovered, "recovered")


if __name__ == "__main__":
    main()
